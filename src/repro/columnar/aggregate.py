"""Columnar extraction kernels: SoA cell aggregation for CellAggExtractor.

The scalar extraction path walks every cell of every per-partition partial
collective instance in Python — one ``local`` call, one ``Entry`` rebuild,
and (at merge time) two structure-equality checks per cell.  This module
replaces those loops with a :class:`CellTable`: a structure-of-arrays
partial holding dense numpy value/count columns keyed by cell id, built
with scatter-add kernels (``np.bincount`` for sums and counts,
``ufunc.at`` for min/max) and merged with elementwise column ops.

An :class:`AggSpec` is the columnar compilation of one extractor's
``local``/``merge``/``finalize`` triple:

* :meth:`AggSpec.build` — one partition-partial instance → its CellTable
  (the vectorized ``local`` + within-partition ``merge``);
* :meth:`CellTable.merge` — the vectorized cross-partition ``merge``;
* :meth:`AggSpec.finalize` — merged CellTable → per-cell feature list;
* :meth:`AggSpec.partials` — CellTable → per-cell *unfinalized* partials
  in the scalar representation, so a columnar partial can be demoted and
  merged scalar-wise when a sibling partition fell back (mixed inputs).

Exactness contract: every kernel reproduces the scalar path bit-for-bit,
not just approximately.  The load-bearing facts: ``np.bincount``
accumulates its weights *sequentially in input order* (pairs are emitted
cell-major, so within-cell order equals the scalar value-scan order);
per-trajectory segment distances are computed with the same scalar
``haversine_distance`` calls, once per trajectory; and portion lengths
are summed with Python's sequential ``sum`` per *unique* portion (numpy's
pairwise-summation reductions — including ``reduceat`` — associate
differently and are deliberately avoided).  ``build`` returns ``None``
for inputs it cannot vectorize exactly (non-envelope transit cells,
non-instant trajectory timestamps); callers fall back to the scalar path
for that partition.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Sequence

from repro._deps import require_numpy
from repro.geometry.distance import haversine_distance
from repro.geometry.envelope import Envelope
from repro.instances.event import Event
from repro.instances.trajectory import Trajectory

__all__ = [
    "AggSpec",
    "CellTable",
    "CountSpec",
    "FieldMeanSpec",
    "PortionSpeedSpec",
    "TransitSpec",
    "WholeTrajSpeedSpec",
    "cell_counts",
    "scatter_count",
    "scatter_max",
    "scatter_min",
    "scatter_sum",
]


def _np():
    return require_numpy("columnar extraction kernels")


# -- scatter kernels -----------------------------------------------------------


def cell_counts(entries: Sequence, n_cells: int):
    """``len(entry.value)`` per cell as an int64 column."""
    np = _np()
    return np.fromiter((len(e.value) for e in entries), np.int64, count=n_cells)


def scatter_sum(cell_ids, weights, n_cells: int):
    """Per-cell sum of ``weights`` grouped by ``cell_ids`` (float64).

    ``np.bincount`` accumulates sequentially in input order, so emitting
    pairs cell-major makes this bit-identical to the scalar per-cell fold.
    """
    np = _np()
    return np.bincount(cell_ids, weights=weights, minlength=n_cells)


def scatter_count(cell_ids, n_cells: int):
    """Occurrences per cell (int64)."""
    np = _np()
    return np.bincount(cell_ids, minlength=n_cells).astype(np.int64, copy=False)


def scatter_min(cell_ids, values, n_cells: int):
    """Per-cell minimum; empty cells hold ``+inf``."""
    np = _np()
    out = np.full(n_cells, np.inf)
    np.minimum.at(out, cell_ids, values)
    return out


def scatter_max(cell_ids, values, n_cells: int):
    """Per-cell maximum; empty cells hold ``-inf``."""
    np = _np()
    out = np.full(n_cells, -np.inf)
    np.maximum.at(out, cell_ids, values)
    return out


_COMBINE_OPS = ("sum", "min", "max")


class CellTable:
    """A dense per-partition extraction partial in SoA form.

    ``columns`` maps a column name to a length-``n_cells`` numpy array;
    ``ops`` maps each column to its cross-partial combine op (``sum`` /
    ``min`` / ``max``).  Tables are immutable once built: ``merge``
    returns a new table and may alias unmodified input columns.

    ``kind`` records the collective-instance type the table was built
    from, standing in for the per-cell structure-equality checks the
    scalar ``merge_with`` performs (partials of one extraction share the
    single broadcast structure, so type + cell count is the invariant
    worth checking here).  ``rows`` and ``partials`` feed the obs
    counters: total (cell, value) pairs aggregated, and how many
    per-instance partials were folded in.
    """

    __slots__ = ("n_cells", "columns", "ops", "kind", "rows", "partials")

    def __init__(
        self,
        n_cells: int,
        columns: dict,
        ops: dict,
        kind: str,
        rows: int = 0,
        partials: int = 1,
    ):
        for name, op in ops.items():
            if op not in _COMBINE_OPS:
                raise ValueError(f"unknown combine op {op!r} for column {name!r}")
        self.n_cells = n_cells
        self.columns = columns
        self.ops = ops
        self.kind = kind
        self.rows = rows
        self.partials = partials

    @property
    def nbytes(self) -> int:
        """Total column payload bytes (what a shipped partial weighs)."""
        return sum(col.nbytes for col in self.columns.values())

    def merge(self, other: "CellTable") -> "CellTable":
        """Vectorized cross-partial combine (the columnar ``merge``).

        Columns present on one side only are kept as-is for the left
        table and zero-seeded (``0 + column``) for the right — exactly
        mirroring the scalar dict-merge convention of e.g. the
        air-quality extractor, where ``a``'s fields pass through
        untouched and ``b``'s new fields land on ``sums.get(f, 0.0)``.
        """
        if self.kind != other.kind:
            raise TypeError("can only merge cell tables of the same instance type")
        if self.n_cells != other.n_cells:
            raise ValueError("cannot merge cell tables with different cell counts")
        np = _np()
        columns: dict = {}
        ops = dict(self.ops)
        for name, a in self.columns.items():
            b = other.columns.get(name)
            if b is None:
                columns[name] = a
                continue
            op = self.ops[name]
            if op == "sum":
                columns[name] = a + b
            elif op == "min":
                columns[name] = np.minimum(a, b)
            else:
                columns[name] = np.maximum(a, b)
        for name, b in other.columns.items():
            if name in columns:
                continue
            ops[name] = other.ops[name]
            columns[name] = (b.dtype.type(0) + b) if other.ops[name] == "sum" else b
        return CellTable(
            self.n_cells,
            columns,
            ops,
            self.kind,
            rows=self.rows + other.rows,
            partials=self.partials + other.partials,
        )


# -- agg specs -----------------------------------------------------------------


class AggSpec(ABC):
    """Columnar compilation of one extractor's local/merge/finalize."""

    @abstractmethod
    def build(self, instance) -> CellTable | None:
        """One partial collective instance → its CellTable.

        Returns ``None`` when this instance cannot be vectorized exactly;
        the caller then computes the partition's partial on the scalar
        path instead.
        """

    @abstractmethod
    def finalize(self, table: CellTable) -> list:
        """Merged CellTable → per-cell features, in cell order."""

    @abstractmethod
    def partials(self, table: CellTable) -> list:
        """CellTable → per-cell partials in the scalar representation.

        Used to demote a columnar partial for a scalar ``merge_with``
        when sibling partitions fell back to the scalar path.
        """


def _pair_layout(entries, type_check) -> tuple[list[int], dict]:
    """Cell-major (cell, value) pair layout plus a per-value grouping.

    Returns ``(pair_cells, groups)`` where ``pair_cells[p]`` is the cell
    of pair ``p`` (pairs enumerate cells in order, values in cell order —
    the exact scan order of the scalar path) and ``groups`` maps
    ``id(value)`` to ``(value, positions)`` for per-trajectory vectorized
    computation scattered back by pair position.
    """
    pair_cells: list[int] = []
    groups: dict[int, tuple[Any, list[int]]] = {}
    for cell, entry in enumerate(entries):
        for value in entry.value:
            type_check(value)
            group = groups.get(id(value))
            if group is None:
                groups[id(value)] = (value, [len(pair_cells)])
            else:
                group[1].append(len(pair_cells))
            pair_cells.append(cell)
    return pair_cells, groups


def _instant_timestamps(traj: Trajectory) -> list[float] | None:
    """The trajectory's timestamps, or None if any entry spans an interval.

    The searchsorted window trick below models entry durations as points;
    interval-valued entries would make closed-interval ``intersects``
    membership non-contiguous in general, so such inputs fall back.
    """
    ts: list[float] = []
    for e in traj.entries:
        t = e.temporal.start
        if e.temporal.end != t:
            return None
        ts.append(t)
    return ts


def _segment_meters(traj: Trajectory) -> list[float]:
    """Per-consecutive-pair haversine distances, via the scalar function.

    Computed once per trajectory and reused across every cell the
    trajectory was allocated to — same floats as
    ``Trajectory.length_meters`` summing them would see.
    """
    entries = traj.entries
    return [
        haversine_distance(a.spatial.x, a.spatial.y, b.spatial.x, b.spatial.y)
        for a, b in zip(entries, entries[1:])
    ]


class CountSpec(AggSpec):
    """Vectorizes the flow extractors: ``local = len``, ``merge = +``."""

    def build(self, instance) -> CellTable:
        entries = instance.entries
        n = len(entries)
        counts = cell_counts(entries, n)
        return CellTable(
            n,
            {"count": counts},
            {"count": "sum"},
            type(instance).__name__,
            rows=int(counts.sum()),
        )

    def finalize(self, table: CellTable) -> list:
        return table.columns["count"].tolist()

    def partials(self, table: CellTable) -> list:
        return table.columns["count"].tolist()


class WholeTrajSpeedSpec(AggSpec):
    """Vectorizes ``SmSpeedExtractor``: whole-trajectory mean speed.

    A trajectory's speed is cell-independent, so it is computed once (with
    the same ``average_speed_*`` call the scalar path makes per cell) and
    scattered to every cell holding the trajectory.
    """

    def __init__(self, unit: str, type_error: str):
        self.unit = unit
        self.type_error = type_error

    def _check(self, value) -> None:
        if not isinstance(value, Trajectory):
            raise TypeError(self.type_error)

    def build(self, instance) -> CellTable:
        np = _np()
        entries = instance.entries
        n = len(entries)
        pair_cells, groups = _pair_layout(entries, self._check)
        pair_cell = np.asarray(pair_cells, dtype=np.int64)
        speeds = np.empty(len(pair_cells))
        kmh = self.unit == "kmh"
        for traj, positions in groups.values():
            speed = traj.average_speed_kmh() if kmh else traj.average_speed_ms()
            speeds[positions] = speed
        return CellTable(
            n,
            {
                "total": scatter_sum(pair_cell, speeds, n),
                "count": scatter_count(pair_cell, n),
            },
            {"total": "sum", "count": "sum"},
            type(instance).__name__,
            rows=len(pair_cells),
        )

    def finalize(self, table: CellTable) -> list:
        totals = table.columns["total"].tolist()
        counts = table.columns["count"].tolist()
        return [t / c if c else None for t, c in zip(totals, counts)]

    def partials(self, table: CellTable) -> list:
        totals = table.columns["total"].tolist()
        counts = table.columns["count"].tolist()
        return list(zip(totals, counts))


class PortionSpeedSpec(AggSpec):
    """Vectorizes the sub-trajectory speed extractors (Ts / Raster).

    Per cell, each trajectory contributes the average speed of its portion
    inside the cell's duration, skipping portions with fewer than two
    points.  Timestamps are sorted, so a closed time window keeps a
    contiguous entry slice ``[i, j]``: ``i``/``j`` come from a vectorized
    ``searchsorted`` over all of a trajectory's cells at once, and the
    portion length is the sequential ``sum`` of precomputed per-segment
    haversine distances — evaluated once per *unique* portion, since
    e.g. every spatial cell of one raster time slot shares the slice.
    """

    def __init__(self, unit: str, type_error: str, count_vehicles: bool = False):
        self.unit = unit
        self.type_error = type_error
        self.count_vehicles = count_vehicles

    def _check(self, value) -> None:
        if not isinstance(value, Trajectory):
            raise TypeError(self.type_error)

    def build(self, instance) -> CellTable | None:
        np = _np()
        entries = instance.entries
        n = len(entries)
        starts = np.fromiter((e.temporal.start for e in entries), float, count=n)
        ends = np.fromiter((e.temporal.end for e in entries), float, count=n)
        pair_cells, groups = _pair_layout(entries, self._check)
        pair_cell = np.asarray(pair_cells, dtype=np.int64)
        speeds = np.zeros(len(pair_cells))
        kept = np.zeros(len(pair_cells), dtype=bool)
        kmh = self.unit == "kmh"
        for traj, positions in groups.values():
            ts_list = _instant_timestamps(traj)
            if ts_list is None:
                return None
            ts = np.asarray(ts_list)
            pos = np.asarray(positions, dtype=np.int64)
            cells = pair_cell[pos]
            lo = np.searchsorted(ts, starts[cells], side="left")
            hi = np.searchsorted(ts, ends[cells], side="right") - 1
            seg: list[float] | None = None
            portion_speed: dict[tuple[int, int], float] = {}
            for p, i, j in zip(positions, lo.tolist(), hi.tolist()):
                if j - i < 1:
                    continue  # portion missing or single-point: skipped
                speed = portion_speed.get((i, j))
                if speed is None:
                    if seg is None:
                        seg = _segment_meters(traj)
                    elapsed = ts_list[j] - ts_list[i]
                    speed = sum(seg[i:j]) / elapsed if elapsed > 0 else 0.0
                    if kmh:
                        speed = speed * 3.6
                    portion_speed[(i, j)] = speed
                speeds[p] = speed
                kept[p] = True
        in_cell = pair_cell[kept]
        columns = {
            "total": scatter_sum(in_cell, speeds[kept], n),
            "count": scatter_count(in_cell, n),
        }
        ops = {"total": "sum", "count": "sum"}
        if self.count_vehicles:
            columns["vehicles"] = cell_counts(entries, n)
            ops["vehicles"] = "sum"
        return CellTable(
            n, columns, ops, type(instance).__name__, rows=len(pair_cells)
        )

    def finalize(self, table: CellTable) -> list:
        totals = table.columns["total"].tolist()
        counts = table.columns["count"].tolist()
        means = [t / c if c else None for t, c in zip(totals, counts)]
        if not self.count_vehicles:
            return means
        vehicles = table.columns["vehicles"].tolist()
        return list(zip(vehicles, means))

    def partials(self, table: CellTable) -> list:
        totals = table.columns["total"].tolist()
        counts = table.columns["count"].tolist()
        if not self.count_vehicles:
            return list(zip(totals, counts))
        vehicles = table.columns["vehicles"].tolist()
        return list(zip(vehicles, totals, counts))


class TransitSpec(AggSpec):
    """Vectorizes ``RasterTransitExtractor``: per-cell in/out flow.

    Supports envelope spatial cells (the regular-raster case): the
    temporal window gives a contiguous timestamp slice, and the in-cell
    test over that slice is a vectorized closed-bounds containment —
    identical comparisons to ``Envelope.contains_point``.  Non-envelope
    cells fall back to the scalar path.
    """

    def __init__(self, type_error: str):
        self.type_error = type_error

    def build(self, instance) -> CellTable | None:
        np = _np()
        entries = instance.entries
        n = len(entries)
        for e in entries:
            if not isinstance(e.spatial, Envelope):
                return None
        min_x = np.fromiter((e.spatial.min_x for e in entries), float, count=n)
        max_x = np.fromiter((e.spatial.max_x for e in entries), float, count=n)
        min_y = np.fromiter((e.spatial.min_y for e in entries), float, count=n)
        max_y = np.fromiter((e.spatial.max_y for e in entries), float, count=n)
        starts = np.fromiter((e.temporal.start for e in entries), float, count=n)
        ends = np.fromiter((e.temporal.end for e in entries), float, count=n)

        def check(value) -> None:
            if not isinstance(value, (Event, Trajectory)):
                raise TypeError(self.type_error)

        pair_cells, groups = _pair_layout(entries, check)
        inflow = np.zeros(n, dtype=np.int64)
        outflow = np.zeros(n, dtype=np.int64)
        pair_cell = np.asarray(pair_cells, dtype=np.int64)
        rows = len(pair_cells)
        for traj, positions in groups.values():
            if isinstance(traj, Event):
                continue  # events carry no motion (scalar path skips them too)
            ts_list = _instant_timestamps(traj)
            if ts_list is None:
                return None
            ts = np.asarray(ts_list)
            xs = np.fromiter((e.spatial.x for e in traj.entries), float, count=len(ts))
            ys = np.fromiter((e.spatial.y for e in traj.entries), float, count=len(ts))
            t_first = ts_list[0]
            t_last = ts_list[-1]
            pos = np.asarray(positions, dtype=np.int64)
            cells = pair_cell[pos]
            lo = np.searchsorted(ts, starts[cells], side="left")
            hi = np.searchsorted(ts, ends[cells], side="right") - 1
            for c, i, j in zip(cells.tolist(), lo.tolist(), hi.tolist()):
                if j < i:
                    continue  # no points inside the cell's duration
                xw = xs[i : j + 1]
                yw = ys[i : j + 1]
                inside = (xw >= min_x[c]) & (xw <= max_x[c])
                inside &= (yw >= min_y[c]) & (yw <= max_y[c])
                if not inside.any():
                    continue
                first_in = ts_list[i + int(inside.argmax())]
                last_in = ts_list[i + len(inside) - 1 - int(inside[::-1].argmax())]
                if first_in > t_first:
                    inflow[c] += 1
                if last_in < t_last:
                    outflow[c] += 1
        return CellTable(
            n,
            {"inflow": inflow, "outflow": outflow},
            {"inflow": "sum", "outflow": "sum"},
            type(instance).__name__,
            rows=rows,
        )

    def finalize(self, table: CellTable) -> list:
        return self.partials(table)

    def partials(self, table: CellTable) -> list:
        inflow = table.columns["inflow"].tolist()
        outflow = table.columns["outflow"].tolist()
        return list(zip(inflow, outflow))


class FieldMeanSpec(AggSpec):
    """Vectorizes the air-quality extractor: per-field means over events.

    Each event's ``value`` is a dict of index readings; fields become
    dynamic ``sum:*`` columns (plus ``n:*`` presence counts, so a field
    that summed to the same float by accident is still reported exactly
    when the scalar dict would hold it).
    """

    def build(self, instance) -> CellTable:
        np = _np()
        entries = instance.entries
        n = len(entries)
        counts = cell_counts(entries, n)
        field_cells: dict[str, list[int]] = {}
        field_vals: dict[str, list[float]] = {}
        for cell, entry in enumerate(entries):
            for ev in entry.value:
                for field, v in ev.value.items():
                    if field not in field_cells:
                        field_cells[field] = []
                        field_vals[field] = []
                    field_cells[field].append(cell)
                    field_vals[field].append(v)
        columns = {"count": counts}
        ops = {"count": "sum"}
        for field, cells in field_cells.items():
            ids = np.asarray(cells, dtype=np.int64)
            columns[f"sum:{field}"] = scatter_sum(ids, field_vals[field], n)
            columns[f"n:{field}"] = scatter_count(ids, n)
            ops[f"sum:{field}"] = "sum"
            ops[f"n:{field}"] = "sum"
        return CellTable(
            n, columns, ops, type(instance).__name__, rows=int(counts.sum())
        )

    def _cell_dicts(self, table: CellTable, fields: list[str]) -> list[dict]:
        sums = {f: table.columns[f"sum:{f}"].tolist() for f in fields}
        present = {f: table.columns[f"n:{f}"].tolist() for f in fields}
        return [
            {f: sums[f][c] for f in fields if present[f][c]}
            for c in range(table.n_cells)
        ]

    def finalize(self, table: CellTable) -> list:
        counts = table.columns["count"].tolist()
        fields = sorted(
            name[4:] for name in table.columns if name.startswith("sum:")
        )
        features = []
        for count, sums in zip(counts, self._cell_dicts(table, fields)):
            if not count:
                features.append(None)
            else:
                features.append(
                    {f: round(total / count, 9) for f, total in sums.items()}
                )
        return features

    def partials(self, table: CellTable) -> list:
        counts = table.columns["count"].tolist()
        fields = [name[4:] for name in table.columns if name.startswith("sum:")]
        return list(zip(self._cell_dicts(table, fields), counts))
