#!/usr/bin/env python
"""Executable-documentation checker.

Two independent checks over markdown files:

* ``--exec``  — every fenced ```python block runs, top to bottom, in one
  shared namespace per file (so later snippets may build on earlier ones,
  exactly as a reader executing the guide would).  Each file executes in
  its own temporary working directory: snippets that write ``data/...``
  stay out of the repo tree.
* ``--links`` — every relative markdown link target and every
  repo-path-shaped reference in inline code (``src/...``, ``docs/...``,
  ``examples/...``, ``tools/...``, ``tests/...``, ``benchmarks/...``)
  must exist on disk, so the docs can't drift stale against the tree.

With neither flag, both checks run.  Exit status 1 on any failure.

Usage::

    python tools/check_docs.py README.md docs/*.md
    python tools/check_docs.py --links README.md docs/*.md
"""

from __future__ import annotations

import argparse
import contextlib
import os
import re
import sys
import tempfile
import traceback
from dataclasses import dataclass
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: ```python ... ``` fences (tag must be exactly "python"; ``bash``/``text``
#: blocks are never executed).
_FENCE = re.compile(r"^```python[ \t]*\n(.*?)^```[ \t]*$", re.M | re.S)
#: [text](target) markdown links; images share the syntax.
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
#: Repo paths quoted as inline code, e.g. `examples/quickstart.py`.
_CODE_PATH = re.compile(
    r"`((?:src|docs|examples|tools|tests|benchmarks)/[A-Za-z0-9_./-]+)`"
)


@dataclass
class Failure:
    path: Path
    line: int
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: {self.message}"


def python_blocks(text: str) -> list[tuple[int, str]]:
    """(1-based start line, source) for every fenced python block."""
    blocks = []
    for match in _FENCE.finditer(text):
        line = text.count("\n", 0, match.start(1)) + 1
        blocks.append((line, match.group(1)))
    return blocks


def check_exec(path: Path) -> list[Failure]:
    """Run the file's python blocks sequentially in a shared namespace."""
    text = path.read_text()
    blocks = python_blocks(text)
    if not blocks:
        return []
    namespace: dict = {"__name__": f"docs:{path.name}"}
    failures = []
    cwd = os.getcwd()
    with tempfile.TemporaryDirectory(prefix=f"docs-{path.stem}-") as scratch:
        os.chdir(scratch)
        try:
            for line, source in blocks:
                try:
                    code = compile(source, f"{path}:{line}", "exec")
                    # Swallow snippet prints; errors are what we report.
                    with open(os.devnull, "w") as sink, contextlib.redirect_stdout(sink):
                        exec(code, namespace)  # noqa: S102 - the point of the tool
                except Exception:
                    detail = traceback.format_exc(limit=-1).strip().splitlines()[-1]
                    failures.append(Failure(path, line, f"block failed: {detail}"))
                    break  # later blocks depend on this namespace; stop here
        finally:
            os.chdir(cwd)
    return failures


def check_links(path: Path) -> list[Failure]:
    """Verify relative link targets and inline-code repo paths exist."""
    failures = []
    for lineno, line in enumerate(path.read_text().splitlines(), start=1):
        targets = [t for t in _LINK.findall(line)] + _CODE_PATH.findall(line)
        for target in targets:
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            clean = target.split("#")[0]
            if not clean:
                continue
            # Relative to the file's directory, falling back to repo root
            # (inline-code paths are written repo-relative by convention).
            if (path.parent / clean).exists() or (REPO_ROOT / clean).exists():
                continue
            failures.append(Failure(path, lineno, f"dead path reference: {target}"))
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("paths", nargs="+", type=Path)
    parser.add_argument("--exec", dest="run_exec", action="store_true")
    parser.add_argument("--links", dest="run_links", action="store_true")
    args = parser.parse_args(argv)
    run_exec = args.run_exec or not (args.run_exec or args.run_links)
    run_links = args.run_links or not (args.run_exec or args.run_links)

    failures: list[Failure] = []
    checked_blocks = 0
    for path in args.paths:
        if not path.exists():
            failures.append(Failure(path, 0, "no such file"))
            continue
        if run_links:
            failures.extend(check_links(path))
        if run_exec:
            checked_blocks += len(python_blocks(path.read_text()))
            failures.extend(check_exec(path))

    for failure in failures:
        print(failure, file=sys.stderr)
    if run_exec:
        print(f"executed {checked_blocks} python block(s) across {len(args.paths)} file(s)")
    if failures:
        print(f"{len(failures)} documentation failure(s)", file=sys.stderr)
        return 1
    print("docs OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
