"""CI smoke for the streaming path: ingest, chaos, parity, traces.

A seeded micro-batch feed runs end to end on the **process backend
under a fault storm** (worker kills, task errors, scheduling delays —
the same deterministic `FaultPlan` machinery behind ``repro chaos``)
and must come out bit-identical to a fault-free batch run:

1. **Ingestion** — K seeded daily micro-batches committed through
   ``StDataset.ingest``, each T-STR-fitted on its own, the persisted
   watermark advancing per commit (checked monotone), one batch
   deliberately late (checked counted, not dropped);
2. **Parity under chaos** — after every ingest the hourly-flow feature
   is extended with ``Pipeline.run_incremental`` on the process backend
   with fault injection on; the final incrementally maintained feature
   must equal — bit for bit — a from-scratch, fault-free batch run
   over the union;
3. **Windows under chaos** — a tumbling windowed extractor absorbs the
   same feed through a crash-and-restore cycle (``PipelineCheckpoint``)
   and must match a clean one-shot reference;
4. **Observability** — the whole feed runs under a tracer; ingest /
   watermark / incremental counters are asserted and the spans are
   written to ``traces/stream-smoke.*`` for the CI artifact upload.

Run::

    PYTHONPATH=src python tools/stream_smoke.py

Exit code 0 only when all four hold.
"""

from __future__ import annotations

import argparse
import random
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro import (  # noqa: E402
    Duration,
    EngineContext,
    Envelope,
    Pipeline,
    Selector,
    StDataset,
    TimeSeriesStructure,
    TSTRPartitioner,
    WindowedFlowExtractor,
)
from repro.core.converters import Event2TsConverter  # noqa: E402
from repro.core.extractors import TsFlowExtractor  # noqa: E402
from repro.engine.faults import FaultPlan, FaultRule, PipelineCheckpoint  # noqa: E402
from repro.instances import Event  # noqa: E402
from repro.obs import Tracer, installed, write_trace_files  # noqa: E402

DAY = 86_400.0
AREA = Envelope(0.0, 0.0, 10.0, 10.0)
DAYS = 4
EVENTS_PER_DAY = 500

#: The storm: every task flips these dice (deterministically, from the
#: plan seed), so several worker kills and task errors land mid-feed.
STORM = [
    FaultRule("worker_kill", probability=0.15),
    FaultRule("task_error", probability=0.15),
    FaultRule("delay", probability=0.2, delay_seconds=0.005),
]


def day_batch(day: int) -> list[Event]:
    rng = random.Random(4200 + day)
    return [
        Event.of_point(
            rng.uniform(0.0, 10.0),
            rng.uniform(0.0, 10.0),
            day * DAY + rng.uniform(0.0, DAY),
            data=i,
        )
        for i in range(EVENTS_PER_DAY)
    ]


def make_pipeline(span: Duration) -> Pipeline:
    return Pipeline(
        selector=Selector(AREA, span),
        converter=Event2TsConverter(TimeSeriesStructure.of_interval(span, 3_600.0)),
        extractor=TsFlowExtractor(),
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seed", type=int, default=7, help="fault-plan seed")
    parser.add_argument(
        "--out",
        default=str(REPO_ROOT / "traces" / "stream-smoke"),
        help="trace output path prefix",
    )
    args = parser.parse_args(argv)

    import tempfile

    span = Duration(0.0, DAYS * DAY)
    plan = FaultPlan(STORM, seed=args.seed)
    chaos_ctx = EngineContext(
        default_parallelism=4,
        backend="process",
        backend_options={"warmup": False},
        fault_plan=plan,
    )
    tracer = Tracer()
    failures: list[str] = []

    with tempfile.TemporaryDirectory(prefix="stream-smoke-") as tmp:
        feed = Path(tmp) / "feed"
        ds = StDataset(feed)
        pipeline = make_pipeline(span)
        win = WindowedFlowExtractor(origin=0.0, size=6 * 3_600.0)
        ckpt = PipelineCheckpoint(Path(tmp) / "ckpt", chaos_ctx)
        win_selector = Selector(AREA, span)

        # Feed order 0, 2, 1, 3 — batch "1" arrives a day late.
        feed_order = [0, 2, 1, 3]
        state = None
        position = 0
        marks: list[float] = []
        with installed(tracer):
            for step, day in enumerate(feed_order):
                report = ds.ingest(
                    day_batch(day),
                    partitioner=TSTRPartitioner(1, 2),
                    instance_type="event" if step == 0 else None,
                )
                marks.append(report.watermark)
                if day == 1 and report.late_records != EVENTS_PER_DAY:
                    failures.append(
                        f"late batch miscounted: {report.late_records} "
                        f"!= {EVENTS_PER_DAY}"
                    )
                run = pipeline.run_incremental(chaos_ctx, feed, state=state)
                state = run.state
                win.update(win_selector.select(chaos_ctx, feed, offset=position))
                position = len(ds.metadata().partitions)
                win.checkpoint(ckpt)
                if step == 1:  # crash-and-restore mid-feed
                    win = WindowedFlowExtractor(origin=0.0, size=6 * 3_600.0)
                    if not win.restore(ckpt):
                        failures.append("window checkpoint restore failed")
                print(
                    f"[stream-smoke] step {step}: day-{day} batch, "
                    f"watermark {report.watermark:.0f}, "
                    f"+{run.blocks_new} blocks incremental"
                    + (" (late)" if report.late_records else ""),
                    flush=True,
                )

        if marks != sorted(marks):
            failures.append(f"watermark regressed: {marks}")
        if ds.metadata().watermark != marks[-1]:
            failures.append("persisted watermark != last report")

        # Parity gates: chaos-fed incremental state vs fault-free batch.
        clean_ctx = EngineContext(default_parallelism=4)
        batch = make_pipeline(span).run(clean_ctx, feed)
        if state.partials and run.result.cell_values() != batch.cell_values():
            failures.append("incremental-vs-batch parity violated under chaos")
        clean_win = WindowedFlowExtractor(origin=0.0, size=6 * 3_600.0)
        clean_win.update(Selector(AREA, span).select(clean_ctx, feed))
        if win.features() != clean_win.features():
            failures.append("windowed feature diverged under chaos")

    counters = tracer.counters
    for name, expect in [
        ("ingest_batches", DAYS),
        ("ingest_records", DAYS * EVENTS_PER_DAY),
        ("ingest_late_records", EVENTS_PER_DAY),
        ("incremental_runs", DAYS),
    ]:
        if counters.get(name) != expect:
            failures.append(f"counter {name}: {counters.get(name)} != {expect}")
    if not counters.get("watermark_lag"):
        failures.append("watermark_lag counter missing")

    paths = write_trace_files(tracer, args.out)
    print(f"[stream-smoke] traces: {', '.join(str(p) for p in paths.values())}")

    if failures:
        for failure in failures:
            print(f"[stream-smoke] FAIL: {failure}")
        return 1
    print(
        "[stream-smoke] PASS: parity + windows held under fault storm "
        f"({DAYS} batches, {DAYS * EVENTS_PER_DAY} records, seed {args.seed})"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
