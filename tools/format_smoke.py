"""CI smoke for the v1↔v2 block formats: conversion + output parity.

What it proves, end to end, with real CLI subprocesses on the
quickstart-sized dataset:

1. **Conversion** — ``repro convert-format`` rewrites the quickstart v1
   dataset to v2 (copy and in-place), removing the old-format blocks and
   bumping the generation in place;
2. **CLI parity** — ``repro select --format json`` answers byte-for-byte
   identically over the v1 original, the converted copy, and the
   in-place-converted dataset, for every probe query;
3. **Serve parity** — a daemon over the v2 dataset returns the same
   canonical result document as the one-shot CLI over the v1 original;
4. **Pruned accounting** — a narrow v2 selection reports fewer records
   deserialized than the dataset holds (the pushdown actually pruned).

Run::

    PYTHONPATH=src python tools/format_smoke.py

Exit code 0 only when all four hold.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
import threading
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.datasets.common import EPOCH_2013  # noqa: E402
from repro.serve import (  # noqa: E402
    QueryServer,
    ServeClient,
    ServeConfig,
    result_document,
    wait_until_ready,
)

QUERIES = [
    {"bbox": [-74.02, 40.60, -73.96, 40.70], "time": [EPOCH_2013, EPOCH_2013 + 10 * 86_400.0]},
    {"bbox": [-74.00, 40.70, -73.92, 40.78], "time": [EPOCH_2013, EPOCH_2013 + 20 * 86_400.0]},
    {"bbox": [-74.00, 40.70, -73.95, 40.76], "time": [EPOCH_2013, EPOCH_2013 + 10 * 86_400.0]},
]


def run_cli(*cli_args: str) -> str:
    """One `repro` subprocess (the real CLI path); returns its stdout."""
    result = subprocess.run(
        [sys.executable, "-m", "repro.cli", *cli_args],
        capture_output=True,
        text=True,
        check=True,
        env={**os.environ, "PYTHONPATH": str(REPO_ROOT / "src")},
        cwd=REPO_ROOT,
    )
    return result.stdout.strip()


def select_json(dataset: Path, query: dict) -> str:
    return run_cli(
        "select", str(dataset),
        "--bbox", *[str(v) for v in query["bbox"]],
        "--time", *[str(v) for v in query["time"]],
        "--format", "json",
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--records", type=int, default=10_000)
    args = parser.parse_args(argv)

    failures: list[str] = []
    with tempfile.TemporaryDirectory(prefix="format-smoke-") as tmp:
        v1 = Path(tmp) / "nyc-v1"
        copy = Path(tmp) / "nyc-v2"
        print(
            f"[format-smoke] generating {args.records} quickstart-style events (v1)",
            flush=True,
        )
        run_cli(
            "generate", "nyc", "--records", str(args.records),
            "--out", str(v1), "--block-format", "v1",
        )
        expected = [select_json(v1, q) for q in QUERIES]
        for i, doc in enumerate(expected):
            parsed = json.loads(doc)
            if not parsed.get("count", len(parsed.get("records", []))):
                failures.append(
                    f"probe query {i} matched no records — parity would be trivial"
                )

        # 1: convert to a copy, then the original in place.
        print(run_cli("convert-format", str(v1), "--to", "v2", "--out", str(copy)))
        stale = sorted(p.name for p in copy.glob("part-*.pkl"))
        if stale:
            failures.append(f"converted copy kept v1 blocks: {stale}")

        # 2: byte parity across all three layouts, every probe query.
        for i, query in enumerate(QUERIES):
            if select_json(copy, query) != expected[i]:
                failures.append(f"query {i}: converted copy bytes != v1 bytes")
        print(run_cli("convert-format", str(v1), "--to", "v2"))
        if sorted(p.name for p in v1.glob("part-*.pkl")):
            failures.append("in-place conversion left v1 blocks behind")
        for i, query in enumerate(QUERIES):
            if select_json(v1, query) != expected[i]:
                failures.append(f"query {i}: in-place converted bytes != v1 bytes")
        print(
            f"[format-smoke] CLI parity over {len(QUERIES)} queries x "
            f"3 layouts: {len(failures)} failures",
            flush=True,
        )

        # 3: a daemon over the v2 copy answers the same bytes.
        server = QueryServer(copy, ServeConfig(workers=2))
        host, port = server.start()
        serve_thread = threading.Thread(target=server.serve_forever, daemon=True)
        serve_thread.start()
        try:
            wait_until_ready(host, port)
            with ServeClient(host, port) as client:
                for i, query in enumerate(QUERIES):
                    response = client.query(
                        bbox=query["bbox"], time_range=query["time"]
                    )
                    if response.get("status") != "ok":
                        failures.append(f"serve query {i}: {response}")
                    elif result_document(response) != expected[i]:
                        failures.append(
                            f"serve query {i}: served bytes != one-shot v1 bytes"
                        )
        finally:
            server.stop()
            serve_thread.join(timeout=5)
        print("[format-smoke] serve parity over v2 checked", flush=True)

        # 4: the narrow query's pruned accounting (text mode prints stats).
        report = run_cli(
            "select", str(copy),
            "--bbox", *[str(v) for v in QUERIES[2]["bbox"]],
            "--time", *[str(v) for v in QUERIES[2]["time"]],
        )
        print(report)
        stats_line = next(
            (line for line in report.splitlines() if "records deserialized" in line),
            "",
        )
        try:
            deserialized = int(
                stats_line.split("records deserialized:")[1].split()[0].replace(",", "")
            )
        except (IndexError, ValueError):
            deserialized = None
        if deserialized is None:
            failures.append(f"could not parse pruning stats: {report!r}")
        elif deserialized >= args.records:
            failures.append(
                f"v2 pushdown deserialized every record ({deserialized}) on a "
                f"narrow query — pruning is not working"
            )
        else:
            print(
                f"[format-smoke] narrow query deserialized {deserialized}/"
                f"{args.records} records",
                flush=True,
            )

    if failures:
        for failure in failures:
            print(f"[format-smoke] FAIL: {failure}")
        return 1
    print("[format-smoke] OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
