"""CI smoke for the serve daemon: concurrency, parity, shedding, traces.

What it proves, end to end, against a real daemon on the quickstart-sized
dataset:

1. **Concurrency** — at least 16 queries race across 2 tenants (one
   connection per thread) and every one answers ``ok``;
2. **Parity** — each served result document is byte-for-byte identical to
   a one-shot ``repro select --format json`` subprocess over the same
   range (the CLI path, not an in-process shortcut);
3. **Shedding** — a deliberately starved tenant (``rate=0``) receives
   explicit ``SHED`` responses while the others keep completing;
4. **Observability** — the daemon runs under a tracer, and the per-request
   spans/counters are written to ``traces/serve-smoke.*`` for the CI
   artifact upload.

Run::

    PYTHONPATH=src python tools/serve_smoke.py

Exit code 0 only when all four hold.
"""

from __future__ import annotations

import argparse
import os
import subprocess
import sys
import tempfile
import threading
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.datasets import generate_nyc_events  # noqa: E402
from repro.datasets.common import EPOCH_2013  # noqa: E402
from repro.obs import Tracer, installed, write_trace_files  # noqa: E402
from repro.partitioners import TSTRPartitioner  # noqa: E402
from repro.serve import (  # noqa: E402
    QueryServer,
    ServeClient,
    ServeConfig,
    TenantPolicy,
    result_document,
    wait_until_ready,
)
from repro.stio import save_dataset  # noqa: E402

QUERIES = [
    {"bbox": [-74.02, 40.60, -73.96, 40.70], "time": [EPOCH_2013, EPOCH_2013 + 10 * 86_400.0]},
    {"bbox": [-74.00, 40.70, -73.92, 40.78], "time": [EPOCH_2013, EPOCH_2013 + 20 * 86_400.0]},
    {"bbox": [-73.98, 40.64, -73.90, 40.74], "time": [EPOCH_2013 + 5 * 86_400.0, EPOCH_2013 + 25 * 86_400.0]},
    {"bbox": [-74.03, 40.66, -73.94, 40.76], "time": [EPOCH_2013, EPOCH_2013 + 30 * 86_400.0]},
]


def one_shot_cli(dataset: Path, query: dict) -> str:
    """The canonical result document via a real `repro select` subprocess."""
    result = subprocess.run(
        [
            sys.executable, "-m", "repro.cli", "select", str(dataset),
            "--bbox", *[str(v) for v in query["bbox"]],
            "--time", *[str(v) for v in query["time"]],
            "--format", "json",
        ],
        capture_output=True,
        text=True,
        check=True,
        env={**os.environ, "PYTHONPATH": str(REPO_ROOT / "src")},
        cwd=REPO_ROOT,
    )
    return result.stdout.strip()


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--records", type=int, default=10_000)
    parser.add_argument("--concurrency", type=int, default=16)
    parser.add_argument("--out", type=Path, default=REPO_ROOT / "traces" / "serve-smoke")
    args = parser.parse_args(argv)

    print(f"[serve-smoke] dataset: {args.records} quickstart-style events", flush=True)
    events = generate_nyc_events(args.records, seed=17, days=30)
    failures: list[str] = []
    tracer = Tracer()
    with tempfile.TemporaryDirectory(prefix="serve-smoke-") as tmp:
        dataset = Path(tmp) / "nyc"
        save_dataset(dataset, events, "event", partitioner=TSTRPartitioner(4, 4))
        expected = {i: one_shot_cli(dataset, q) for i, q in enumerate(QUERIES)}

        config = ServeConfig(
            workers=4,
            tenants={"starved": TenantPolicy(rate=0, burst=2, max_inflight=8)},
        )
        with installed(tracer):
            server = QueryServer(dataset, config)
            host, port = server.start()
            serve_thread = threading.Thread(target=server.serve_forever, daemon=True)
            serve_thread.start()
            try:
                wait_until_ready(host, port)

                # 1+2: concurrent queries across two tenants, each checked
                # against the one-shot CLI bytes.
                def worker(thread_id: int) -> None:
                    tenant = f"team-{thread_id % 2}"
                    query_id = thread_id % len(QUERIES)
                    query = QUERIES[query_id]
                    try:
                        with ServeClient(host, port, tenant=tenant) as client:
                            response = client.query(
                                bbox=query["bbox"], time_range=query["time"]
                            )
                    except Exception as exc:  # noqa: BLE001 - report, don't hang CI
                        failures.append(f"thread {thread_id}: {exc}")
                        return
                    if response.get("status") != "ok":
                        failures.append(f"thread {thread_id}: {response}")
                    elif result_document(response) != expected[query_id]:
                        failures.append(
                            f"thread {thread_id}: served bytes != one-shot CLI bytes"
                        )

                threads = [
                    threading.Thread(target=worker, args=(i,))
                    for i in range(args.concurrency)
                ]
                for t in threads:
                    t.start()
                for t in threads:
                    t.join(timeout=60)
                print(
                    f"[serve-smoke] {args.concurrency} concurrent queries "
                    f"across 2 tenants: {len(failures)} failures",
                    flush=True,
                )

                # 3: the starved tenant must shed — others already completed.
                shed_statuses = []
                with ServeClient(host, port, tenant="starved") as client:
                    for _ in range(4):
                        response = client.query(
                            bbox=QUERIES[0]["bbox"], time_range=QUERIES[0]["time"]
                        )
                        shed_statuses.append(response.get("status"))
                if shed_statuses.count("SHED") < 2:
                    failures.append(f"starved tenant never shed: {shed_statuses}")
                else:
                    print(
                        f"[serve-smoke] starved tenant statuses: {shed_statuses}",
                        flush=True,
                    )
                counters = {
                    k: v for k, v in sorted(server.counters.items()) if "[" not in k
                }
                print(f"[serve-smoke] server counters: {counters}", flush=True)
                if not counters.get("serve_shed"):
                    failures.append("no serve_shed counter recorded")
            finally:
                server.stop()
                serve_thread.join(timeout=5)

    # 4: the trace artifact — every request span the daemon recorded.
    paths = write_trace_files(tracer, args.out)
    for kind, path in sorted(paths.items()):
        print(f"[serve-smoke] {kind} trace written to {path}")
    spans = sum(1 for s in tracer.spans if s.category == "serve")
    print(f"[serve-smoke] {spans} serve request spans traced")
    if spans < args.concurrency:
        failures.append(f"expected >= {args.concurrency} request spans, got {spans}")

    if failures:
        for failure in failures:
            print(f"[serve-smoke] FAIL: {failure}")
        return 1
    print("[serve-smoke] OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
