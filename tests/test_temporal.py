"""Duration and window tests."""

import math
import pickle

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.temporal import Duration, sliding_windows, tumbling_windows

time_value = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False)


@st.composite
def durations(draw):
    a, b = sorted((draw(time_value), draw(time_value)))
    return Duration(a, b)


class TestDuration:
    def test_instant(self):
        d = Duration.instant(42.0)
        assert d.is_instant
        assert d.length == 0.0

    def test_single_arg_is_instant(self):
        assert Duration(5.0).is_instant

    def test_inverted_rejected(self):
        with pytest.raises(ValueError):
            Duration(2, 1)

    def test_nan_rejected(self):
        with pytest.raises(ValueError):
            Duration(math.nan, 1)

    def test_immutable(self):
        d = Duration(0, 1)
        with pytest.raises(AttributeError):
            d.start = 5

    def test_contains(self):
        d = Duration(10, 20)
        assert d.contains(10) and d.contains(20) and d.contains(15)
        assert not d.contains(9.999)

    def test_intersects_touching(self):
        assert Duration(0, 10).intersects(Duration(10, 20))
        assert not Duration(0, 10).intersects(Duration(10.001, 20))

    def test_intersection(self):
        assert Duration(0, 10).intersection(Duration(5, 15)) == Duration(5, 10)
        assert Duration(0, 10).intersection(Duration(11, 15)) is None

    def test_distance(self):
        assert Duration(0, 10).distance_to(Duration(15, 20)) == 5.0
        assert Duration(0, 10).distance_to(Duration(5, 20)) == 0.0

    def test_merge_all(self):
        merged = Duration.merge_all([Duration(5, 10), Duration(0, 2), Duration(8, 20)])
        assert merged == Duration(0, 20)

    def test_merge_all_empty_rejected(self):
        with pytest.raises(ValueError):
            Duration.merge_all([])

    def test_split(self):
        slots = Duration(0, 10).split(5)
        assert len(slots) == 5
        assert slots[0] == Duration(0, 2)
        assert slots[-1] == Duration(8, 10)

    def test_shifted_expanded(self):
        assert Duration(0, 10).shifted(5) == Duration(5, 15)
        assert Duration(5, 10).expanded(2) == Duration(3, 12)

    def test_hour_of_day(self):
        assert Duration.instant(0.0).hour_of_day() == 0.0
        assert Duration.instant(3 * 3600.0 + 1800.0).hour_of_day() == 3.5

    def test_day_index(self):
        assert Duration.instant(0.0).day_index() == 0
        assert Duration.instant(86_400.0 * 2 + 5).day_index() == 2

    def test_ordering_and_hash(self):
        assert Duration(0, 1) < Duration(0, 2) < Duration(1, 1)
        assert hash(Duration(0, 1)) == hash(Duration(0, 1))

    def test_pickle(self):
        d = Duration(1.5, 2.5)
        assert pickle.loads(pickle.dumps(d)) == d


class TestWindows:
    def test_tumbling_covers_extent(self):
        windows = tumbling_windows(Duration(0, 10), 3)
        assert windows[0].start == 0
        assert windows[-1].end == 10
        assert len(windows) == 4  # 3 + 3 + 3 + 1(truncated)

    def test_tumbling_exact_division(self):
        windows = tumbling_windows(Duration(0, 9), 3)
        assert len(windows) == 3
        assert all(w.length == 3 for w in windows)

    def test_tumbling_zero_extent(self):
        windows = tumbling_windows(Duration(5, 5), 1)
        assert windows == [Duration(5, 5)]

    def test_tumbling_invalid_size(self):
        with pytest.raises(ValueError):
            tumbling_windows(Duration(0, 10), 0)

    def test_sliding_overlap(self):
        windows = sliding_windows(Duration(0, 10), size=4, step=2)
        assert windows[0] == Duration(0, 4)
        assert windows[1] == Duration(2, 6)

    def test_sliding_invalid(self):
        with pytest.raises(ValueError):
            sliding_windows(Duration(0, 1), 0, 1)


class TestDurationProperties:
    @given(durations(), durations())
    def test_intersects_symmetric(self, a, b):
        assert a.intersects(b) == b.intersects(a)

    @given(durations(), durations())
    def test_intersection_within_both(self, a, b):
        overlap = a.intersection(b)
        if overlap is not None:
            assert a.contains_duration(overlap)
            assert b.contains_duration(overlap)

    @given(durations(), durations())
    def test_distance_zero_iff_intersects(self, a, b):
        assert (a.distance_to(b) == 0.0) == a.intersects(b)

    @given(durations(), st.integers(1, 10))
    def test_split_tiles_exactly(self, d, n):
        slots = d.split(n)
        assert len(slots) == n
        assert slots[0].start == d.start
        assert abs(slots[-1].end - d.end) <= 1e-6 * max(1.0, abs(d.end))
