"""Partitioner unit tests."""

import pytest

from repro.engine import EngineContext
from repro.instances import Event
from repro.partitioners import (
    HashPartitioner,
    KDBPartitioner,
    QuadTreePartitioner,
    STRPartitioner,
    TBalancePartitioner,
    TSTRPartitioner,
)
from tests.conftest import make_events, make_trajectories

ALL_PARTITIONERS = [
    lambda: HashPartitioner(16),
    lambda: STRPartitioner(16),
    lambda: TSTRPartitioner(4, 4),
    lambda: QuadTreePartitioner(16),
    lambda: TBalancePartitioner(16),
    lambda: KDBPartitioner(16),
]


@pytest.fixture
def events():
    return make_events(400, seed=3)


@pytest.fixture
def trajectories():
    return make_trajectories(60, seed=3)


class TestLifecycle:
    @pytest.mark.parametrize("factory", ALL_PARTITIONERS)
    def test_assign_before_fit_raises(self, factory, events):
        p = factory()
        with pytest.raises(RuntimeError):
            p.assign(events[0])

    @pytest.mark.parametrize("factory", ALL_PARTITIONERS)
    def test_fit_empty_sample(self, factory):
        p = factory()
        if isinstance(p, HashPartitioner):
            p.fit([])  # hash needs no sample
            assert p.is_fitted
        else:
            with pytest.raises(ValueError):
                p.fit([])

    def test_invalid_counts_rejected(self):
        for cls in (HashPartitioner, STRPartitioner, QuadTreePartitioner,
                    TBalancePartitioner, KDBPartitioner):
            with pytest.raises(ValueError):
                cls(0)
        with pytest.raises(ValueError):
            TSTRPartitioner(0, 4)


class TestAssignmentTotality:
    @pytest.mark.parametrize("factory", ALL_PARTITIONERS)
    def test_every_instance_assigned_in_range(self, factory, events):
        p = factory()
        p.fit(events[:100])  # fit on a subset, assign everything
        n = p.num_partitions
        for ev in events:
            pid = p.assign(ev)
            assert 0 <= pid < n

    @pytest.mark.parametrize("factory", ALL_PARTITIONERS)
    def test_out_of_sample_extremes_still_assigned(self, factory, events):
        p = factory()
        p.fit(events)
        outlier = Event.of_point(999.0, -999.0, 1e9, data="far")
        assert 0 <= p.assign(outlier) < p.num_partitions

    @pytest.mark.parametrize("factory", ALL_PARTITIONERS)
    def test_assign_all_contains_primary(self, factory, trajectories):
        p = factory()
        p.fit(trajectories)
        for traj in trajectories:
            assert p.assign(traj) in p.assign_all(traj)

    @pytest.mark.parametrize("factory", ALL_PARTITIONERS)
    def test_boundaries_count_matches(self, factory, events):
        p = factory()
        p.fit(events)
        assert len(p.boundaries()) == p.num_partitions

    @pytest.mark.parametrize("factory", ALL_PARTITIONERS)
    def test_boundaries_cover_instances(self, factory, events):
        p = factory()
        p.fit(events)
        bounds = p.boundaries()
        for ev in events:
            box = ev.st_box()
            assert any(b.intersects(box) for b in bounds)


class TestPartitionExecution:
    @pytest.mark.parametrize("factory", ALL_PARTITIONERS)
    def test_partition_preserves_records(self, factory, events):
        ctx = EngineContext(default_parallelism=4)
        rdd = ctx.parallelize(events, 4)
        out = factory().partition(rdd)
        assert sorted(ev.data for ev in out.collect()) == sorted(
            ev.data for ev in events
        )

    def test_partition_with_info_returns_boundaries(self, events):
        ctx = EngineContext(default_parallelism=4)
        rdd = ctx.parallelize(events, 4)
        p = TSTRPartitioner(2, 4)
        out, bounds = p.partition_with_info(rdd)
        assert len(bounds) == p.num_partitions
        assert out.count() == len(events)

    def test_duplicate_grows_record_count(self, trajectories):
        ctx = EngineContext(default_parallelism=4)
        rdd = ctx.parallelize(trajectories, 4)
        plain = TSTRPartitioner(3, 3).partition(rdd, duplicate=False)
        dup = TSTRPartitioner(3, 3).partition(rdd, duplicate=True)
        assert plain.count() == len(trajectories)
        assert dup.count() >= plain.count()


class TestHashPartitioner:
    def test_deterministic(self, events):
        p = HashPartitioner(8)
        p.fit([])
        assignments_a = [p.assign(ev) for ev in events]
        assignments_b = [p.assign(ev) for ev in events]
        assert assignments_a == assignments_b

    def test_balance(self, events):
        from collections import Counter

        p = HashPartitioner(8)
        p.fit([])
        counts = Counter(p.assign(ev) for ev in events)
        assert max(counts.values()) < 2.0 * min(counts.values())

    def test_assign_all_is_single(self, events):
        p = HashPartitioner(8)
        p.fit([])
        assert len(p.assign_all(events[0])) == 1


class TestTSTR:
    def test_partition_count_near_target(self, events):
        p = TSTRPartitioner(4, 4)
        p.fit(events)
        assert p.num_partitions == 16

    def test_temporal_slices_disjoint_in_time(self, events):
        p = TSTRPartitioner(4, 4)
        p.fit(events)
        bounds = p.boundaries()
        # Partitions within the same temporal slice share t-range; across
        # slices t-ranges only touch at cuts.
        t_ranges = sorted({(b.mins[2], b.maxs[2]) for b in bounds})
        for (lo1, hi1), (lo2, hi2) in zip(t_ranges, t_ranges[1:]):
            assert hi1 <= lo2

    def test_st_locality_beats_str_on_time(self, events):
        """T-STR partitions have bounded temporal extent; 2-d STR's do not."""
        tstr = TSTRPartitioner(4, 4)
        tstr.fit(events)
        str2d = STRPartitioner(16)
        str2d.fit(events)
        tstr_t_span = max(b.maxs[2] - b.mins[2] for b in tstr.boundaries())
        str_t_span = max(b.maxs[2] - b.mins[2] for b in str2d.boundaries())
        assert tstr_t_span < str_t_span

    def test_degenerate_all_same_timestamp(self):
        events = [Event.of_point(float(i), float(i), 5.0, data=i) for i in range(50)]
        p = TSTRPartitioner(4, 4)
        p.fit(events)
        for ev in events:
            assert 0 <= p.assign(ev) < p.num_partitions


class TestQuadTreePartitioner:
    def test_leaf_count_near_target(self, events):
        p = QuadTreePartitioner(16)
        p.fit(events)
        assert 4 <= p.num_partitions <= 64

    def test_assign_all_fallback_outside_bounds(self, events):
        p = QuadTreePartitioner(8)
        p.fit(events)
        outlier = Event.of_point(1e6, 1e6, 0.0)
        assert p.assign_all(outlier) == [p.assign(outlier)]


class TestKDB:
    def test_spatial_split_counts(self, events):
        p = KDBPartitioner(16)
        p.fit(events)
        assert p.num_partitions == 16

    def test_degenerate_identical_points(self):
        events = [Event.of_point(1.0, 1.0, float(i)) for i in range(20)]
        p = KDBPartitioner(8)
        p.fit(events)
        assert p.num_partitions == 1
