"""Envelope unit tests."""

import math
import pickle

import pytest

from repro.geometry import Envelope, Point


class TestConstruction:
    def test_basic(self):
        env = Envelope(0, 1, 2, 3)
        assert (env.min_x, env.min_y, env.max_x, env.max_y) == (0, 1, 2, 3)

    def test_degenerate_point_envelope_allowed(self):
        env = Envelope(1, 2, 1, 2)
        assert env.area == 0.0

    def test_inverted_x_rejected(self):
        with pytest.raises(ValueError):
            Envelope(2, 0, 1, 1)

    def test_inverted_y_rejected(self):
        with pytest.raises(ValueError):
            Envelope(0, 2, 1, 1)

    def test_nan_rejected(self):
        with pytest.raises(ValueError):
            Envelope(math.nan, 0, 1, 1)

    def test_immutable(self):
        env = Envelope(0, 0, 1, 1)
        with pytest.raises(AttributeError):
            env.min_x = 5

    def test_of_points(self):
        env = Envelope.of_points([(1, 5), (3, 2), (-1, 4)])
        assert env == Envelope(-1, 2, 3, 5)

    def test_of_points_empty_rejected(self):
        with pytest.raises(ValueError):
            Envelope.of_points([])

    def test_merge_all(self):
        merged = Envelope.merge_all([Envelope(0, 0, 1, 1), Envelope(2, 2, 3, 3)])
        assert merged == Envelope(0, 0, 3, 3)

    def test_merge_all_empty_rejected(self):
        with pytest.raises(ValueError):
            Envelope.merge_all([])


class TestPredicates:
    def test_intersects_overlap(self):
        assert Envelope(0, 0, 2, 2).intersects_envelope(Envelope(1, 1, 3, 3))

    def test_intersects_disjoint(self):
        assert not Envelope(0, 0, 1, 1).intersects_envelope(Envelope(2, 2, 3, 3))

    def test_intersects_touching_boundary(self):
        # Closed-boundary semantics: shared edges count.
        assert Envelope(0, 0, 1, 1).intersects_envelope(Envelope(1, 0, 2, 1))

    def test_intersects_corner_touch(self):
        assert Envelope(0, 0, 1, 1).intersects_envelope(Envelope(1, 1, 2, 2))

    def test_contains_point_inside_and_boundary(self):
        env = Envelope(0, 0, 2, 2)
        assert env.contains_point(1, 1)
        assert env.contains_point(0, 0)
        assert env.contains_point(2, 2)
        assert not env.contains_point(2.001, 1)

    def test_contains_envelope(self):
        assert Envelope(0, 0, 4, 4).contains_envelope(Envelope(1, 1, 2, 2))
        assert not Envelope(0, 0, 4, 4).contains_envelope(Envelope(3, 3, 5, 5))

    def test_intersects_dispatches_to_point(self):
        assert Envelope(0, 0, 2, 2).intersects(Point(1, 1))
        assert not Envelope(0, 0, 2, 2).intersects(Point(3, 3))


class TestMeasurement:
    def test_width_height_area(self):
        env = Envelope(0, 0, 3, 2)
        assert env.width == 3
        assert env.height == 2
        assert env.area == 6

    def test_centroid(self):
        assert Envelope(0, 0, 4, 2).centroid() == Point(2, 1)

    def test_distance_to_disjoint(self):
        d = Envelope(0, 0, 1, 1).distance_to(Envelope(4, 5, 6, 7))
        assert d == pytest.approx(5.0)

    def test_distance_to_overlapping_is_zero(self):
        assert Envelope(0, 0, 2, 2).distance_to(Envelope(1, 1, 3, 3)) == 0.0


class TestManipulation:
    def test_merge(self):
        assert Envelope(0, 0, 1, 1).merge(Envelope(2, -1, 3, 0.5)) == Envelope(0, -1, 3, 1)

    def test_intersection(self):
        result = Envelope(0, 0, 2, 2).intersection(Envelope(1, 1, 3, 3))
        assert result == Envelope(1, 1, 2, 2)

    def test_intersection_disjoint_is_none(self):
        assert Envelope(0, 0, 1, 1).intersection(Envelope(5, 5, 6, 6)) is None

    def test_expanded(self):
        assert Envelope(0, 0, 1, 1).expanded(0.5) == Envelope(-0.5, -0.5, 1.5, 1.5)

    def test_split_tiles_exactly(self):
        cells = Envelope(0, 0, 4, 2).split(4, 2)
        assert len(cells) == 8
        assert Envelope.merge_all(cells) == Envelope(0, 0, 4, 2)
        assert sum(c.area for c in cells) == pytest.approx(8.0)

    def test_split_row_major_order(self):
        cells = Envelope(0, 0, 2, 2).split(2, 2)
        # y-outer, x-inner
        assert cells[0] == Envelope(0, 0, 1, 1)
        assert cells[1] == Envelope(1, 0, 2, 1)
        assert cells[2] == Envelope(0, 1, 1, 2)

    def test_split_invalid_rejected(self):
        with pytest.raises(ValueError):
            Envelope(0, 0, 1, 1).split(0, 2)


class TestValueSemantics:
    def test_equality_and_hash(self):
        a = Envelope(0, 0, 1, 1)
        b = Envelope(0, 0, 1, 1)
        assert a == b
        assert hash(a) == hash(b)
        assert a != Envelope(0, 0, 1, 2)

    def test_pickle_roundtrip(self):
        env = Envelope(0.5, -1.5, 2.5, 3.5)
        assert pickle.loads(pickle.dumps(env)) == env
