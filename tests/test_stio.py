"""On-disk dataset, metadata index, and format codec tests."""

import json

import pytest

from repro.engine import EngineContext
from repro.geometry import Envelope, LineString, Point, Polygon
from repro.instances import Event, Trajectory
from repro.partitioners import TSTRPartitioner
from repro.stio import (
    DatasetMetadata,
    PartitionMeta,
    StDataset,
    decode_record,
    encode_record,
    load_dataset,
    read_raster_csv,
    save_dataset,
    write_raster_csv,
)
from repro.index import STBox
from repro.temporal import Duration
from tests.conftest import make_events, make_trajectories


class TestRecordCodec:
    def test_event_roundtrip(self):
        ev = Event.of_point(1.5, 2.5, 100.0, value="aux", data=42)
        assert decode_record(encode_record(ev)) == ev

    def test_trajectory_roundtrip(self):
        traj = Trajectory.of_points([(0, 0, 0, "a"), (1, 1, 15, "b")], data="t1")
        restored = decode_record(encode_record(traj))
        assert restored == traj

    def test_event_geometry_variants(self):
        for geom in (
            Point(1, 2),
            Envelope(0, 0, 1, 1),
            LineString([(0, 0), (1, 1)]),
            Polygon([(0, 0), (1, 0), (0, 1)]),
        ):
            ev = Event(geom, Duration(0, 5), data="g")
            assert decode_record(encode_record(ev)) == ev

    def test_collective_rejected(self):
        from repro.instances import TimeSeries

        with pytest.raises(TypeError):
            encode_record(TimeSeries.regular(Duration(0, 2), 1.0))

    def test_unknown_tag_rejected(self):
        with pytest.raises(ValueError):
            decode_record(("X", None))


class TestRasterCsv:
    def test_roundtrip(self, tmp_path):
        cells = [
            (Polygon([(0, 0), (1, 0), (1, 1), (0, 1)]), Duration(0, 3600)),
            (Polygon([(1, 0), (2, 0), (2, 1)]), Duration(3600, 7200)),
        ]
        path = tmp_path / "raster.csv"
        write_raster_csv(path, cells)
        restored = read_raster_csv(path)
        assert restored == cells

    def test_comments_and_blanks_skipped(self, tmp_path):
        path = tmp_path / "raster.csv"
        path.write_text("# comment\n0,0|1,0|1,1;0;10\n")
        cells = read_raster_csv(path)
        assert len(cells) == 1

    def test_malformed_row_rejected(self, tmp_path):
        path = tmp_path / "raster.csv"
        path.write_text("0,0|1,0|1,1;0\n")
        with pytest.raises(ValueError):
            read_raster_csv(path)

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "raster.csv"
        path.write_text("")
        with pytest.raises(ValueError):
            read_raster_csv(path)


class TestMetadata:
    def test_save_load_roundtrip(self, tmp_path):
        meta = DatasetMetadata(
            instance_type="event",
            partitions=[
                PartitionMeta("part-00000.pkl", 10, STBox((0, 0, 0), (1, 1, 1))),
            ],
        )
        meta.save(tmp_path)
        loaded = DatasetMetadata.load(tmp_path)
        assert loaded.instance_type == "event"
        assert loaded.partitions[0].bounds == STBox((0, 0, 0), (1, 1, 1))
        assert loaded.total_records == 10

    def test_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            DatasetMetadata.load(tmp_path)

    def test_corrupted_json(self, tmp_path):
        (tmp_path / "metadata.json").write_text("{not json")
        with pytest.raises(ValueError, match="corrupted"):
            DatasetMetadata.load(tmp_path)

    def test_missing_key(self, tmp_path):
        (tmp_path / "metadata.json").write_text(json.dumps({"version": 1}))
        with pytest.raises(ValueError, match="missing key"):
            DatasetMetadata.load(tmp_path)

    def test_future_version_rejected(self, tmp_path):
        (tmp_path / "metadata.json").write_text(
            json.dumps({"version": 99, "instance_type": "event", "partitions": []})
        )
        with pytest.raises(ValueError, match="newer"):
            DatasetMetadata.load(tmp_path)

    def test_select_partitions_pruning(self):
        parts = [
            PartitionMeta("a", 5, STBox((0, 0, 0), (1, 1, 10))),
            PartitionMeta("b", 5, STBox((5, 5, 0), (6, 6, 10))),
            PartitionMeta("empty", 0, STBox((0, 0, 0), (9, 9, 10))),
        ]
        meta = DatasetMetadata("event", parts)
        hits = meta.select_partitions(Envelope(0, 0, 2, 2), Duration(0, 5))
        assert [p.filename for p in hits] == ["a"]
        # Unconstrained query returns all non-empty partitions.
        assert len(meta.select_partitions(None, None)) == 2

    def test_merged_with(self):
        a = DatasetMetadata("event", [PartitionMeta("a", 1, STBox((0,) * 3, (1,) * 3))])
        b = DatasetMetadata("event", [PartitionMeta("b", 2, STBox((0,) * 3, (1,) * 3))])
        merged = a.merged_with(b)
        assert merged.total_records == 3

    def test_merged_type_mismatch(self):
        a = DatasetMetadata("event", [])
        b = DatasetMetadata("trajectory", [])
        with pytest.raises(ValueError):
            a.merged_with(b)


class TestStDataset:
    def test_save_and_full_read(self, tmp_path):
        events = make_events(100)
        ctx = EngineContext(4)
        save_dataset(tmp_path / "d", events, "event", ctx=ctx)
        rdd, stats = load_dataset(ctx, tmp_path / "d")
        assert sorted(ev.data for ev in rdd.collect()) == sorted(
            ev.data for ev in events
        )
        assert stats.partitions_read == stats.partitions_total

    def test_pruned_read_equals_filtered_full_read(self, tmp_path):
        events = make_events(500, seed=9)
        ctx = EngineContext(4)
        save_dataset(
            tmp_path / "d", events, "event", partitioner=TSTRPartitioner(3, 3), ctx=ctx
        )
        spatial = Envelope(0, 0, 3, 3)
        temporal = Duration(0, 30_000)

        pruned, stats = load_dataset(ctx, tmp_path / "d", spatial, temporal)
        pruned_ids = {
            ev.data
            for ev in pruned.collect()
            if ev.intersects(spatial, temporal)
        }
        expected = {
            ev.data for ev in events if ev.intersects(spatial, temporal)
        }
        assert pruned_ids == expected
        assert stats.partitions_read < stats.partitions_total

    def test_lazy_loading_counts_only_computed(self, tmp_path):
        events = make_events(100)
        ctx = EngineContext(4)
        save_dataset(tmp_path / "d", events, "event", num_partitions=10, ctx=ctx)
        rdd, stats = load_dataset(ctx, tmp_path / "d")
        assert stats.partitions_read == 0  # nothing touched yet
        rdd.take(1)
        assert stats.partitions_read >= 1
        assert stats.partitions_read < 10

    def test_write_trajectories(self, tmp_path):
        trajectories = make_trajectories(20)
        ctx = EngineContext(4)
        save_dataset(tmp_path / "t", trajectories, "trajectory", ctx=ctx)
        rdd, _ = load_dataset(ctx, tmp_path / "t")
        assert rdd.count() == 20

    def test_empty_partitions_handled(self, tmp_path):
        StDataset.write(tmp_path / "d", [[], []], "event")
        ctx = EngineContext(2)
        rdd, _ = load_dataset(ctx, tmp_path / "d")
        assert rdd.collect() == []

    def test_metadata_counts(self, tmp_path):
        events = make_events(60)
        ctx = EngineContext(4)
        ds = save_dataset(tmp_path / "d", events, "event", ctx=ctx)
        assert ds.metadata().total_records == 60

    def test_bounds_are_tight(self, tmp_path):
        events = [Event.of_point(1.0, 1.0, 5.0, data=0)]
        StDataset.write(tmp_path / "d", [events], "event")
        meta = DatasetMetadata.load(tmp_path / "d")
        assert meta.partitions[0].bounds == STBox((1, 1, 5), (1, 1, 5))


class TestPruningEquivalence:
    """Metadata pruning must agree with the in-memory filter exactly.

    Both sides now share one canonical query-box construction
    (``st_query_box``), so a query that merely *touches* a partition MBR
    edge keeps that partition — a record sitting exactly on the edge
    matches the closed-interval filter and would be silently dropped by
    any stricter pruning predicate.
    """

    def _boundary_queries(self, dataset):
        """Queries whose edges coincide exactly with stored partition MBRs."""
        queries = []
        for part in dataset.metadata().partitions:
            if part.count == 0:
                continue
            min_x, min_y, min_t = part.bounds.mins
            max_x, max_y, max_t = part.bounds.maxs
            # Query ending exactly at the partition's min corner: shares
            # only the boundary plane with the MBR.
            queries.append(
                (
                    Envelope(min_x - 1.0, min_y - 1.0, min_x, min_y),
                    Duration(max(0.0, min_t - 10.0), min_t),
                )
            )
            # Query starting exactly at the max corner.
            queries.append(
                (
                    Envelope(max_x, max_y, max_x + 1.0, max_y + 1.0),
                    Duration(max_t, max_t + 10.0),
                )
            )
        return queries

    def test_boundary_touching_pruned_load_equals_full_scan(self, tmp_path):
        from repro.core.selector import Selector

        events = make_events(400, seed=11)
        ctx = EngineContext(4)
        ds = save_dataset(
            tmp_path / "d", events, "event", partitioner=TSTRPartitioner(2, 3), ctx=ctx
        )
        # Place one event exactly on each partition MBR corner so a
        # boundary-touching query has something real to find.
        corner_events = []
        for i, part in enumerate(ds.metadata().partitions):
            x, y, t = part.bounds.mins
            corner_events.append(Event.of_point(x, y, t, data=f"corner-{i}"))
        all_events = events + corner_events
        ds2 = save_dataset(
            tmp_path / "d2",
            all_events,
            "event",
            partitioner=TSTRPartitioner(2, 3),
            ctx=ctx,
        )

        for spatial, temporal in self._boundary_queries(ds2):
            selector = Selector(spatial, temporal)
            pruned = {
                ev.data
                for ev in selector.select(ctx, tmp_path / "d2").collect()
            }
            full = {
                ev.data
                for ev in selector.select(
                    ctx, tmp_path / "d2", use_metadata=False
                ).collect()
            }
            assert pruned == full

    def test_overlaps_matches_filter_on_edge(self):
        """PartitionMeta.overlaps is True whenever a record could match."""
        part = PartitionMeta("p", 3, STBox((0.0, 0.0, 0.0), (5.0, 5.0, 100.0)))
        # Touching the max corner in every dimension: must keep.
        assert part.overlaps(Envelope(5.0, 5.0, 9.0, 9.0), Duration(100.0, 200.0))
        # Touching the min corner: must keep.
        assert part.overlaps(Envelope(-2.0, -2.0, 0.0, 0.0), Duration(-5.0, 0.0))
        # Touching spatially but disjoint temporally: prune.
        assert not part.overlaps(Envelope(5.0, 5.0, 9.0, 9.0), Duration(100.5, 200.0))
        # Unconstrained dimensions keep everything non-empty.
        assert part.overlaps(None, None)
        assert part.overlaps(Envelope(5.0, 5.0, 9.0, 9.0), None)
        assert part.overlaps(None, Duration(100.0, 101.0))

    def test_empty_partition_always_pruned(self):
        part = PartitionMeta("p", 0, STBox((0.0, 0.0, 0.0), (5.0, 5.0, 100.0)))
        assert not part.overlaps(None, None)
        assert not part.overlaps(Envelope(0.0, 0.0, 5.0, 5.0), Duration(0.0, 100.0))

    def test_edge_record_survives_pruned_load(self, tmp_path):
        """A record exactly on a partition edge is found via pruned load."""
        from repro.core.selector import Selector

        ctx = EngineContext(2)
        inside = [Event.of_point(2.0, 2.0, 50.0, data="inside")]
        edge = [Event.of_point(5.0, 5.0, 100.0, data="edge")]
        StDataset.write(tmp_path / "d", [inside, edge], "event")

        selector = Selector(Envelope(5.0, 5.0, 9.0, 9.0), Duration(100.0, 200.0))
        got = {ev.data for ev in selector.select(ctx, tmp_path / "d").collect()}
        assert got == {"edge"}
