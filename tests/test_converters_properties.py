"""Property-based tests on conversion correctness.

The central invariants of Section 4.2: whatever candidate-enumeration
strategy is used, (1) an instance is allocated to *exactly* the cells it
intersects, and (2) all three strategies agree.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.converters.base import allocate
from repro.core.structures import (
    RasterStructure,
    SpatialMapStructure,
    TimeSeriesStructure,
)
from repro.engine import EngineContext
from repro.geometry import Envelope
from repro.instances import Event, Trajectory
from repro.temporal import Duration

coord = st.floats(min_value=-1, max_value=11, allow_nan=False)
timestamp = st.floats(min_value=-10, max_value=110, allow_nan=False)


@st.composite
def events(draw):
    n = draw(st.integers(1, 30))
    return [
        Event.of_point(draw(coord), draw(coord), draw(timestamp), data=i)
        for i in range(n)
    ]


@st.composite
def trajectories(draw):
    n = draw(st.integers(1, 8))
    out = []
    for i in range(n):
        k = draw(st.integers(2, 5))
        times = sorted(draw(timestamp) for _ in range(k))
        pts = [(draw(coord), draw(coord), t) for t in times]
        out.append(Trajectory.of_points(pts, data=i))
    return out


STRUCTURES = [
    lambda: TimeSeriesStructure.regular(Duration(0, 100), 7),
    lambda: SpatialMapStructure.regular(Envelope(0, 0, 10, 10), 4, 3),
    lambda: RasterStructure.regular(Envelope(0, 0, 10, 10), Duration(0, 100), 3, 3, 4),
]


def ground_truth_cells(instance, structure):
    """Brute-force exact allocation: test the instance against each cell."""
    from repro.core.converters.base import _cell_bounds, _matches_cell

    return [
        i
        for i in range(structure.n_cells)
        if _matches_cell(instance, *_cell_bounds(structure, i))
    ]


class TestAllocationProperties:
    @given(events(), st.integers(0, 2))
    @settings(max_examples=40, deadline=None)
    def test_event_allocation_exact(self, evs, structure_index):
        structure = STRUCTURES[structure_index]()
        for method in ("naive", "rtree", "regular"):
            cells = allocate(evs, structure, method)
            for ev in evs:
                expected = set(ground_truth_cells(ev, structure))
                got = {i for i, arr in enumerate(cells) if ev in arr}
                assert got == expected, (method, ev)

    @given(trajectories(), st.integers(0, 2))
    @settings(max_examples=30, deadline=None)
    def test_trajectory_strategies_agree(self, trajs, structure_index):
        structure = STRUCTURES[structure_index]()
        layouts = {}
        for method in ("naive", "rtree", "regular"):
            cells = allocate(trajs, structure, method)
            layouts[method] = [sorted(t.data for t in c) for c in cells]
        assert layouts["naive"] == layouts["rtree"] == layouts["regular"]

    @given(trajectories())
    @settings(max_examples=30, deadline=None)
    def test_trajectory_allocation_matches_ground_truth(self, trajs):
        structure = RasterStructure.regular(
            Envelope(0, 0, 10, 10), Duration(0, 100), 3, 3, 3
        )
        cells = allocate(trajs, structure)
        for traj in trajs:
            expected = set(ground_truth_cells(traj, structure))
            got = {i for i, arr in enumerate(cells) if traj in arr}
            assert got == expected

    @given(events())
    @settings(max_examples=25, deadline=None)
    def test_conversion_pipeline_conserves_mass(self, evs):
        """Allocated count via the RDD pipeline == direct allocation."""
        ctx = EngineContext(default_parallelism=3)
        structure = TimeSeriesStructure.regular(Duration(0, 100), 5)
        from repro.core.converters import Event2TsConverter

        partials = Event2TsConverter(structure).convert(ctx.parallelize(evs, 3))
        merged = partials.reduce(lambda a, b: a.merge_with(b, lambda x, y: x + y))
        direct = allocate(evs, structure)
        assert [len(v) for v in merged.cell_values()] == [len(c) for c in direct]
