"""R-tree unit + property tests (vs brute force)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.index import RTree, STBox


def random_boxes(n: int, seed: int, ndim: int = 2) -> list[tuple[STBox, int]]:
    rng = random.Random(seed)
    boxes = []
    for i in range(n):
        mins = [rng.uniform(0, 90) for _ in range(ndim)]
        maxs = [m + rng.uniform(0, 10) for m in mins]
        boxes.append((STBox(mins, maxs), i))
    return boxes


class TestBuild:
    def test_empty_tree(self):
        tree = RTree.build([])
        assert len(tree) == 0
        assert tree.height == 0
        assert tree.query(STBox((0, 0), (1, 1))) == []

    def test_single_item(self):
        tree = RTree.build([(STBox((0, 0), (1, 1)), "a")])
        assert len(tree) == 1
        assert tree.query(STBox((0.5, 0.5), (2, 2))) == ["a"]

    def test_capacity_bounds_height(self):
        items = random_boxes(1000, 1)
        shallow = RTree.build(items, capacity=64)
        deep = RTree.build(items, capacity=4)
        assert shallow.height < deep.height

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            RTree.build([], capacity=1)

    def test_mixed_dims_rejected(self):
        with pytest.raises(ValueError):
            RTree.build([(STBox((0,), (1,)), 0), (STBox((0, 0), (1, 1)), 1)])

    def test_all_entries(self):
        items = random_boxes(50, 2)
        tree = RTree.build(items)
        assert sorted(p for _, p in tree.all_entries()) == list(range(50))


class TestQuery:
    @pytest.mark.parametrize("ndim", [1, 2, 3])
    def test_matches_brute_force(self, ndim):
        items = random_boxes(400, seed=ndim, ndim=ndim)
        tree = RTree.build(items, capacity=8)
        rng = random.Random(99)
        for _ in range(20):
            mins = [rng.uniform(0, 80) for _ in range(ndim)]
            maxs = [m + rng.uniform(0, 30) for m in mins]
            q = STBox(mins, maxs)
            expected = sorted(i for box, i in items if box.intersects(q))
            assert sorted(tree.query(q)) == expected

    def test_query_dim_mismatch(self):
        tree = RTree.build(random_boxes(10, 3))
        with pytest.raises(ValueError):
            tree.query(STBox((0,), (1,)))

    def test_query_entries_returns_boxes(self):
        items = random_boxes(100, 4)
        tree = RTree.build(items)
        q = STBox((0, 0), (50, 50))
        for box, payload in tree.query_entries(q):
            assert box.intersects(q)
            assert items[payload][0] == box

    def test_stats_track_pruning(self):
        items = random_boxes(1000, 5)
        tree = RTree.build(items, capacity=8)
        tree.stats.reset()
        tree.query(STBox((0, 0), (5, 5)))
        # A selective query must touch far fewer entries than a full scan.
        assert 0 < tree.stats.entry_tests < 1000
        tree.stats.reset()
        assert tree.stats.queries == 0


class TestNearest:
    def test_nearest_matches_brute_force(self):
        items = random_boxes(300, 7)
        tree = RTree.build(items)
        rng = random.Random(1)
        for _ in range(10):
            center = (rng.uniform(0, 100), rng.uniform(0, 100))

            def dist(box: STBox) -> float:
                import math

                return math.sqrt(
                    sum(
                        max(lo - c, c - hi, 0.0) ** 2
                        for c, lo, hi in zip(center, box.mins, box.maxs)
                    )
                )

            expected = sorted((dist(box), i) for box, i in items)[:5]
            got = tree.nearest(center, k=5)
            assert [pytest.approx(d) for d, _ in expected] == [d for d, _ in got]

    def test_nearest_k_zero(self):
        tree = RTree.build(random_boxes(10, 8))
        assert tree.nearest((0, 0), k=0) == []

    def test_nearest_on_empty_tree(self):
        assert RTree.build([]).nearest((0, 0), k=3) == []


coord = st.floats(min_value=0, max_value=100, allow_nan=False)


@st.composite
def box_lists(draw):
    n = draw(st.integers(1, 60))
    items = []
    for i in range(n):
        x1, x2 = sorted((draw(coord), draw(coord)))
        y1, y2 = sorted((draw(coord), draw(coord)))
        items.append((STBox((x1, y1), (x2, y2)), i))
    return items


class TestRTreeProperties:
    @given(box_lists(), coord, coord, coord, coord)
    @settings(max_examples=60, deadline=None)
    def test_query_equals_brute_force(self, items, a, b, c, d):
        x1, x2 = sorted((a, c))
        y1, y2 = sorted((b, d))
        q = STBox((x1, y1), (x2, y2))
        tree = RTree.build(items, capacity=4)
        expected = sorted(i for box, i in items if box.intersects(q))
        assert sorted(tree.query(q)) == expected

    @given(box_lists())
    @settings(max_examples=30, deadline=None)
    def test_every_item_findable_by_own_box(self, items):
        tree = RTree.build(items, capacity=4)
        for box, payload in items:
            assert payload in tree.query(box)
