"""Documentation stays executable — tier-1 guard over ``tools/check_docs.py``.

Every fenced ```python block in the README and ``docs/*.md`` must run
top to bottom, and every relative link / inline-code repo path must
resolve.  The CI docs job runs the same checker standalone; this test
keeps the contract inside the ordinary pytest tier as well.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "tools"))

import check_docs  # noqa: E402

DOC_FILES = sorted(
    [REPO_ROOT / "README.md", *(REPO_ROOT / "docs").glob("*.md")],
    key=lambda p: p.name,
)


def test_doc_corpus_is_nonempty():
    names = {path.name for path in DOC_FILES}
    assert {"README.md", "api_guide.md", "architecture.md",
            "fault_tolerance.md", "reproduction_notes.md"} <= names


@pytest.mark.parametrize("path", DOC_FILES, ids=lambda p: p.name)
def test_doc_links_resolve(path):
    failures = check_docs.check_links(path)
    assert not failures, "\n".join(str(f) for f in failures)


@pytest.mark.parametrize("path", DOC_FILES, ids=lambda p: p.name)
def test_doc_python_blocks_execute(path):
    failures = check_docs.check_exec(path)
    assert not failures, "\n".join(str(f) for f in failures)
