"""Tests for the extended engine operations and the viz module."""

import pytest

from repro.engine import EngineContext
from repro.geometry import Envelope
from repro.instances import Raster, SpatialMap, TimeSeries
from repro.temporal import Duration
from repro.viz import (
    render_flow_digest,
    render_grid,
    render_raster_slice,
    render_spatial_map,
    render_time_series,
)


@pytest.fixture
def ctx():
    return EngineContext(default_parallelism=3)


class TestSetOps:
    def test_intersection(self, ctx):
        a = ctx.parallelize([1, 2, 3, 3, 4], 2)
        b = ctx.parallelize([3, 4, 5], 2)
        assert sorted(a.intersection(b).collect()) == [3, 4]

    def test_intersection_empty(self, ctx):
        a = ctx.parallelize([1, 2], 1)
        b = ctx.parallelize([3], 1)
        assert a.intersection(b).collect() == []

    def test_subtract_keeps_multiset(self, ctx):
        a = ctx.parallelize([1, 1, 2, 3], 2)
        b = ctx.parallelize([2], 1)
        assert sorted(a.subtract(b).collect()) == [1, 1, 3]

    def test_subtract_everything(self, ctx):
        a = ctx.parallelize([1, 2], 1)
        assert a.subtract(a).collect() == []


class TestOrderedTakes:
    def test_top(self, ctx):
        rdd = ctx.parallelize([5, 1, 9, 3, 7], 3)
        assert rdd.top(2) == [9, 7]

    def test_top_with_key(self, ctx):
        rdd = ctx.parallelize(["aa", "b", "cccc"], 2)
        assert rdd.top(1, key=len) == ["cccc"]

    def test_take_ordered(self, ctx):
        rdd = ctx.parallelize([5, 1, 9, 3, 7], 3)
        assert rdd.take_ordered(3) == [1, 3, 5]

    def test_take_more_than_size(self, ctx):
        rdd = ctx.parallelize([2, 1], 1)
        assert rdd.top(10) == [2, 1]
        assert rdd.take_ordered(10) == [1, 2]


class TestVizGrid:
    def test_render_grid_shape(self):
        out = render_grid([0, 1, 2, 3], nx=2, ny=2, title="t")
        lines = out.splitlines()
        assert lines[0] == "t"
        assert len(lines) == 4  # title + 2 rows + legend
        assert len(lines[1]) == 2

    def test_north_on_top(self):
        # Row-major with y-outer: values[2], values[3] are the north row.
        out = render_grid([0, 0, 9, 9], nx=2, ny=2)
        rows = out.splitlines()
        assert rows[0] == "@@"  # high values on top
        assert rows[1] == "  "

    def test_missing_cells(self):
        out = render_grid([None, 5], nx=2, ny=1)
        assert "·" in out.splitlines()[0]

    def test_size_mismatch(self):
        with pytest.raises(ValueError):
            render_grid([1, 2, 3], 2, 2)

    def test_constant_values(self):
        out = render_grid([5, 5], nx=2, ny=1)
        assert out.splitlines()[0] == "@@"
        zero = render_grid([0, 0], nx=2, ny=1)
        assert zero.splitlines()[0] == "  "


class TestVizInstances:
    def test_spatial_map(self):
        sm = SpatialMap.regular(Envelope(0, 0, 2, 2), 2, 2).with_cell_values(
            [1, 2, 3, 4]
        )
        out = render_spatial_map(sm, 2, 2)
        assert len(out.splitlines()) == 3

    def test_raster_slice(self):
        raster = Raster.regular(Envelope(0, 0, 2, 1), Duration(0, 2), 2, 1, 2)
        raster = raster.with_cell_values([1, 9, 2, 8])
        t0 = render_raster_slice(raster, 2, 1, 2, t_index=0)
        t1 = render_raster_slice(raster, 2, 1, 2, t_index=1)
        assert t0.splitlines()[1] != t1.splitlines()[1]

    def test_raster_slice_bounds(self):
        raster = Raster.regular(Envelope(0, 0, 1, 1), Duration(0, 1), 1, 1, 1)
        with pytest.raises(ValueError):
            render_raster_slice(raster, 1, 1, 1, t_index=5)

    def test_time_series_sparkline(self):
        ts = TimeSeries.regular(Duration(0, 40), 10.0).with_cell_values([0, 5, 10, 5])
        out = render_time_series(ts, title="flow")
        assert out.startswith("flow [")
        assert "max=10" in out

    def test_time_series_downsampling(self):
        ts = TimeSeries.regular(Duration(0, 100), 1.0).with_cell_values(list(range(100)))
        out = render_time_series(ts, width=10)
        inner = out[out.index("[") + 1 : out.index("]")]
        assert len(inner) == 10

    def test_flow_digest(self):
        flows = {(1, 8): 10, (2, 8): 10, (1, 20): 5}
        out = render_flow_digest(flows, n_hours=24, bar_width=10)
        lines = out.splitlines()
        assert len(lines) == 25
        assert lines[9].endswith("20")   # hour 8 row shows total 20
        assert "##########" in lines[9]  # peak hour gets the full bar
