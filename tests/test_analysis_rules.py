"""Static analysis rules (`repro lint`) and the strict-mode runtime sanitizer."""

import json
import textwrap
import threading

import pytest

from repro.analysis import (
    LintOptions,
    LintReport,
    Severity,
    lint_paths,
    lint_source,
    render,
    rules_by_id,
)
from repro.cli import main
from repro.engine import Accumulator, EngineContext, StrictModeViolation
from repro.engine.sanitizer import is_accumulator, validate_partitioner
from repro.index.boxes import STBox
from tests.conftest import make_events

WITH_CLOUDPICKLE = LintOptions(assume_cloudpickle=True)


def rules_of(source, **kwargs):
    """Lint a dedented snippet and return the set of rule ids found."""
    findings = lint_source(
        textwrap.dedent(source), options=kwargs.pop("options", WITH_CLOUDPICKLE), **kwargs
    )
    return {f.rule for f in findings}


class TestCaptureRules:
    def test_engine_context_capture_flagged(self):
        assert "REPRO101" in rules_of(
            """
            ctx = EngineContext()
            rdd = ctx.parallelize(range(10))
            out = rdd.map(lambda x: (ctx, x))
            """
        )

    def test_context_annotation_flagged(self):
        assert "REPRO101" in rules_of(
            """
            def job(engine: EngineContext, rdd):
                return rdd.map(lambda x: engine.broadcast(x))
            """
        )

    def test_plain_values_not_flagged(self):
        assert rules_of(
            """
            def job(rdd, factor):
                return rdd.map(lambda x: x * factor)
            """
        ) == set()

    def test_rdd_capture_flagged(self):
        assert "REPRO102" in rules_of(
            """
            def job(ctx):
                lookup_rdd = ctx.parallelize(range(10))
                big = ctx.parallelize(range(100))
                return big.map(lambda x: lookup_rdd.count() + x)
            """
        )

    def test_rdd_producer_value_flagged(self):
        assert "REPRO102" in rules_of(
            """
            def job(ctx, raw):
                pairs = raw.key_by(len)
                return raw.map(lambda x: pairs)
            """
        )

    def test_collected_list_not_flagged(self):
        assert "REPRO102" not in rules_of(
            """
            def job(ctx, raw):
                table = dict(raw.key_by(len).collect())
                return raw.map(lambda x: table.get(x))
            """
        )

    def test_open_handle_capture_flagged(self):
        assert "REPRO103" in rules_of(
            """
            def job(rdd):
                sink = open("out.txt", "w")
                return rdd.foreach(lambda x: sink.write(str(x)))
            """
        )

    def test_handle_opened_inside_closure_not_flagged(self):
        assert "REPRO103" not in rules_of(
            """
            def job(rdd):
                def dump(part):
                    with open("out.txt", "w") as sink:
                        sink.write(str(part))
                    return part
                return rdd.map_partitions(dump)
            """
        )


class TestMutationRules:
    def test_captured_list_mutation_flagged(self):
        assert "REPRO104" in rules_of(
            """
            def job(rdd):
                seen = []
                return rdd.map(lambda x: seen.append(x) or x)
            """
        )

    def test_captured_dict_subscript_write_flagged(self):
        assert "REPRO104" in rules_of(
            """
            def job(rdd):
                counts = {}
                def tally(x):
                    counts[x] = counts.get(x, 0) + 1
                    return x
                return rdd.map(tally)
            """
        )

    def test_accumulator_add_not_flagged(self):
        assert "REPRO104" not in rules_of(
            """
            def job(rdd):
                acc = Accumulator(0, lambda a, b: a + b)
                return rdd.foreach(lambda x: acc.add(x))
            """
        )

    def test_local_mutation_inside_closure_not_flagged(self):
        assert "REPRO104" not in rules_of(
            """
            def job(rdd):
                def dedupe(part):
                    out = []
                    for x in part:
                        out.append(x)
                    return out
                return rdd.map_partitions(dedupe)
            """
        )

    def test_broadcast_value_mutation_flagged(self):
        assert "REPRO109" in rules_of(
            """
            def job(ctx, rdd):
                table = ctx.broadcast({})
                return rdd.map(lambda x: table.value.update({x: 1}) or x)
            """
        )

    def test_broadcast_read_not_flagged(self):
        assert "REPRO109" not in rules_of(
            """
            def job(ctx, rdd):
                table = ctx.broadcast({1: "a"})
                return rdd.map(lambda x: table.value.get(x))
            """
        )


class TestDeterminismRules:
    def test_wall_clock_flagged(self):
        assert "REPRO106" in rules_of(
            """
            import time
            def job(rdd):
                return rdd.map(lambda x: (x, time.time()))
            """
        )

    def test_datetime_now_flagged(self):
        assert "REPRO106" in rules_of(
            """
            import datetime
            def job(rdd):
                return rdd.map(lambda x: (x, datetime.datetime.now()))
            """
        )

    def test_unseeded_random_flagged(self):
        assert "REPRO107" in rules_of(
            """
            import random
            def job(rdd):
                return rdd.filter(lambda x: random.random() < 0.5)
            """
        )

    def test_seeded_rng_not_flagged(self):
        assert "REPRO107" not in rules_of(
            """
            import random
            def job(rdd, seed):
                def thin(i, part):
                    rng = random.Random((seed, i))
                    return [x for x in part if rng.random() < 0.5]
                return rdd.map_partitions_with_index(thin)
            """
        )

    def test_set_iteration_flagged(self):
        assert "REPRO108" in rules_of(
            """
            def job(rdd):
                def keys(part):
                    uniq = set(part)
                    return [k for k in uniq]
                return rdd.map_partitions(keys)
            """
        )

    def test_sorted_set_not_flagged(self):
        assert "REPRO108" not in rules_of(
            """
            def job(rdd):
                def keys(part):
                    return sorted(set(part))
                return rdd.map_partitions(keys)
            """
        )

    def test_driver_side_time_not_flagged(self):
        # wall-clock reads outside stage closures are fine (benchmarks do this)
        assert "REPRO106" not in rules_of(
            """
            import time
            def bench(rdd):
                start = time.perf_counter()
                n = rdd.map(lambda x: x + 1).count()
                return n, time.perf_counter() - start
            """
        )


class TestPicklabilityAndPartitionerRules:
    def test_inline_lambda_flagged_without_cloudpickle(self):
        source = """
            def job(rdd):
                return rdd.map(lambda x: x + 1)
            """
        assert "REPRO105" in rules_of(
            source, options=LintOptions(assume_cloudpickle=False)
        )
        assert "REPRO105" not in rules_of(source)  # cloudpickle assumed

    def test_partitioner_self_mutation_flagged(self):
        assert "REPRO110" in rules_of(
            """
            class CountingPartitioner(STPartitioner):
                def assign(self, instance):
                    self.calls += 1
                    return hash(instance) % self.num_partitions
            """
        )

    def test_pure_partitioner_not_flagged(self):
        assert "REPRO110" not in rules_of(
            """
            class GridPartitioner(STPartitioner):
                def assign(self, instance):
                    return int(instance.t) % self.num_partitions
            """
        )


class TestSuppressionsAndReport:
    SOURCE = """
        def job(rdd):
            seen = []
            return rdd.map(lambda x: seen.append(x) or x)  # repro: noqa[REPRO104]
        """

    def test_targeted_noqa_suppresses(self):
        assert rules_of(self.SOURCE) == set()

    def test_noqa_with_other_rule_does_not_suppress(self):
        assert "REPRO104" in rules_of(self.SOURCE.replace("REPRO104", "REPRO101"))

    def test_bare_noqa_suppresses_everything(self):
        assert rules_of(self.SOURCE.replace("[REPRO104]", "")) == set()

    def test_skip_file_marker(self):
        source = "# repro-lint: skip-file\n" + textwrap.dedent(self.SOURCE).replace(
            "  # repro: noqa[REPRO104]", ""
        )
        assert lint_source(source, options=WITH_CLOUDPICKLE) == []

    def test_multiple_rule_ids_on_one_line(self):
        source = textwrap.dedent(
            """
            import time
            def job(rdd):
                seen = []
                return rdd.map(lambda x: seen.append(time.time()) or x)  # repro: noqa[REPRO104, REPRO106]
            """
        )
        assert lint_source(source, options=WITH_CLOUDPICKLE) == []
        # Dropping one id from the list re-exposes exactly that rule.
        partial = source.replace("REPRO104, REPRO106", "REPRO106")
        assert {f.rule for f in lint_source(partial, options=WITH_CLOUDPICKLE)} == {
            "REPRO104"
        }

    def test_unknown_rule_id_in_noqa_is_inert(self):
        # Unlike --select, a noqa naming an unknown rule must not error —
        # it simply suppresses nothing.
        source = textwrap.dedent(self.SOURCE).replace("REPRO104", "REPRO999")
        assert {f.rule for f in lint_source(source, options=WITH_CLOUDPICKLE)} == {
            "REPRO104"
        }

    def test_skip_file_marker_beyond_first_ten_lines_ignored(self):
        body = textwrap.dedent(self.SOURCE).replace("  # repro: noqa[REPRO104]", "")
        source = "\n" * 12 + "# repro-lint: skip-file\n" + body
        assert {f.rule for f in lint_source(source, options=WITH_CLOUDPICKLE)} == {
            "REPRO104"
        }

    def test_noqa_case_and_spacing_variants(self):
        for comment in (
            "#repro: noqa[REPRO104]",
            "#  repro:  noqa[ REPRO104 ]",
            "# repro: noqa[repro104]",
        ):
            source = textwrap.dedent(self.SOURCE).replace(
                "# repro: noqa[REPRO104]", comment
            )
            assert lint_source(source, options=WITH_CLOUDPICKLE) == [], comment

    def test_noqa_on_wrong_line_does_not_suppress(self):
        source = textwrap.dedent(
            """
            def job(rdd):
                # repro: noqa[REPRO104]
                seen = []
                return rdd.map(lambda x: seen.append(x) or x)
            """
        )
        assert {f.rule for f in lint_source(source, options=WITH_CLOUDPICKLE)} == {
            "REPRO104"
        }

    def test_fails_at_thresholds(self):
        report = LintReport()
        report.findings = lint_source(
            textwrap.dedent(self.SOURCE).replace("  # repro: noqa[REPRO104]", ""),
            options=WITH_CLOUDPICKLE,
        )
        assert report.worst_severity() == Severity.ERROR
        assert report.fails_at(Severity.WARNING)
        assert report.fails_at(Severity.ERROR)
        warn_only = LintReport()
        warn_only.findings = [
            f for f in report.findings if f.severity == Severity.WARNING
        ] or lint_source(
            "import time\n\n"
            "def job(rdd):\n"
            "    return rdd.map(lambda x: (x, time.time()))\n",
            options=WITH_CLOUDPICKLE,
        )
        assert warn_only.fails_at(Severity.WARNING)
        assert not warn_only.fails_at(Severity.ERROR)

    def test_cli_fail_on_flag(self, tmp_path, capsys):
        warn_file = tmp_path / "warns.py"
        warn_file.write_text(
            "import time\n\n"
            "def job(rdd):\n"
            "    return rdd.map(lambda x: (x, time.time()))\n"
        )
        assert main(["lint", str(warn_file)]) == 1
        capsys.readouterr()
        assert main(["lint", str(warn_file), "--fail-on", "error"]) == 0
        # Warnings must still be printed even when not failing the build.
        assert "REPRO106" in capsys.readouterr().out

    def test_select_and_ignore(self):
        source = textwrap.dedent(
            """
            import time
            def job(rdd):
                seen = []
                return rdd.map(lambda x: seen.append(time.time()) or x)
            """
        )
        only = lint_source(source, select=["REPRO104"], options=WITH_CLOUDPICKLE)
        assert {f.rule for f in only} == {"REPRO104"}
        rest = lint_source(source, ignore=["REPRO104"], options=WITH_CLOUDPICKLE)
        assert "REPRO104" not in {f.rule for f in rest}

    def test_unknown_rule_id_rejected(self):
        with pytest.raises(ValueError, match="REPRO999"):
            lint_source("x = 1", select=["REPRO999"])

    def test_rule_catalogue_complete(self):
        expected = [f"REPRO{n}" for n in range(101, 111)] + [
            f"REPRO{n}" for n in range(201, 207)
        ]
        assert sorted(rules_by_id()) == expected

    def test_syntax_error_becomes_finding(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("def broken(:\n")
        report = lint_paths([tmp_path])
        assert report.failed
        assert any(f.rule == "REPRO002" for f in report.all_findings)

    def test_report_failed_thresholds(self):
        report = LintReport()
        assert not report.failed
        report.findings = lint_source(
            textwrap.dedent(self.SOURCE).replace("  # repro: noqa[REPRO104]", ""),
            options=WITH_CLOUDPICKLE,
        )
        assert report.worst_severity() == Severity.ERROR
        assert report.failed


class TestOutputFormats:
    @pytest.fixture
    def report(self, tmp_path):
        target = tmp_path / "pipeline.py"
        target.write_text(
            "def job(rdd):\n"
            "    seen = []\n"
            "    return rdd.map(lambda x: seen.append(x) or x)\n"
        )
        return lint_paths([target], options=WITH_CLOUDPICKLE)

    def test_text_format(self, report):
        out = render(report, "text")
        assert "REPRO104" in out
        assert "checked 1 file(s)" in out

    def test_json_format(self, report):
        payload = json.loads(render(report, "json"))
        assert payload["files_checked"] == 1
        assert payload["findings"][0]["rule"] == "REPRO104"
        assert payload["findings"][0]["severity"] == "error"

    def test_github_format(self, report):
        out = render(report, "github")
        assert out.startswith("::error file=")
        assert "title=REPRO104" in out

    def test_cli_lint_exit_codes(self, report, tmp_path, capsys):
        clean = tmp_path / "clean.py"
        clean.write_text("def job(rdd, k):\n    return rdd.map(lambda x: x + k)\n")
        assert main(["lint", str(clean)]) == 0
        assert main(["lint", str(tmp_path / "pipeline.py")]) == 1
        capsys.readouterr()
        assert main(["lint", "--list-rules"]) == 0
        assert "REPRO110" in capsys.readouterr().out


@pytest.fixture(params=["sequential", "thread", "process"])
def strict_ctx(request):
    with EngineContext(default_parallelism=2, backend=request.param, strict=True) as ctx:
        yield ctx


class TestStrictMode:
    def test_clean_pipeline_passes(self, strict_ctx):
        out = strict_ctx.parallelize(range(20), 2).map(lambda x: x * 2).collect()
        assert out == [x * 2 for x in range(20)]

    def test_unpicklable_capture_caught(self, strict_ctx):
        # Regression: a lock smuggled into a closure must be rejected
        # driver-side on *every* backend, not crash mid-shuffle on process.
        lock = threading.Lock()
        with pytest.raises(StrictModeViolation) as err:
            # The lock capture is the point of the test.
            strict_ctx.parallelize(range(4), 2).map(lambda x: (lock, x) and x).collect()  # repro: noqa[REPRO206]
        assert err.value.rule == "REPRO105"
        assert "lock" in str(err.value)

    def test_mutable_capture_mutation_caught(self, strict_ctx):
        seen = []
        if strict_ctx.backend_name == "process":
            # The write lands in a worker's copy of the closure, so the
            # driver-side list never changes — the exact data loss the
            # sanitizer exists to flag on the in-process backends.
            strict_ctx.parallelize(range(4), 2).map(
                lambda x: seen.append(x) or x  # repro: noqa[REPRO104] — deliberate hazard
            ).collect()
            assert seen == []
        else:
            with pytest.raises(StrictModeViolation) as err:
                strict_ctx.parallelize(range(4), 2).map(
                    lambda x: seen.append(x) or x  # repro: noqa[REPRO104] — deliberate hazard
                ).collect()
            assert err.value.rule == "REPRO104"

    def test_accumulator_is_exempt(self, strict_ctx):
        acc = Accumulator(0, lambda a, b: a + b)
        strict_ctx.parallelize(range(10), 2).foreach(lambda x: acc.add(x))
        assert acc.value == 45

    def test_broadcast_mutation_caught(self):
        with EngineContext(default_parallelism=2, strict=True) as ctx:
            table = ctx.broadcast({"k": 1})
            with pytest.raises(StrictModeViolation) as err:
                ctx.parallelize(range(4), 2).map(
                    lambda x: table.value.__setitem__("k", x) or x  # repro: noqa[REPRO109] — deliberate hazard
                ).collect()
            assert err.value.rule == "REPRO109"

    def test_broadcast_read_is_fine(self, strict_ctx):
        table = strict_ctx.broadcast({"k": 10})
        out = strict_ctx.parallelize(range(4), 2).map(lambda x: x + table.value["k"])
        assert out.collect() == [10, 11, 12, 13]

    def test_non_strict_context_unchanged(self):
        with EngineContext(default_parallelism=2) as ctx:
            seen = []
            ctx.parallelize(range(4), 2).map(
                lambda x: seen.append(x) or x  # repro: noqa[REPRO104] — deliberate hazard
            ).collect()
            assert sorted(seen) == [0, 1, 2, 3]

    def test_worker_copy_sheds_sanitizer(self):
        import pickle

        ctx = EngineContext(strict=True)
        clone = pickle.loads(pickle.dumps(ctx))
        assert clone._sanitizer is None
        assert clone._worker_side

    def test_accumulator_protocol_detection(self):
        assert is_accumulator(Accumulator(0, lambda a, b: a + b))
        assert not is_accumulator(set())  # has .add but no .reset
        assert not is_accumulator([])


class _BrokenAssign:
    """Minimal partitioner double breaking the assign contract."""

    def __init__(self, n=2, result=99):
        self.num_partitions = n
        self._result = result

    def assign(self, instance):
        return self._result

    def boundaries(self):
        box = STBox((0.0, 0.0, 0.0), (1.0, 1.0, 1.0))
        return [box] * self.num_partitions


class TestPartitionerValidation:
    def test_out_of_range_assign_rejected(self):
        events = make_events(5)
        with pytest.raises(StrictModeViolation) as err:
            validate_partitioner(_BrokenAssign(), events)
        assert err.value.rule == "REPRO110"

    def test_zero_partitions_rejected(self):
        with pytest.raises(StrictModeViolation):
            validate_partitioner(_BrokenAssign(n=0), [])

    def test_real_partitioner_validates_through_partition(self):
        from repro.partitioners import TSTRPartitioner

        events = make_events(200)
        with EngineContext(default_parallelism=4, strict=True) as ctx:
            out = TSTRPartitioner(gt=2, gs=2).partition(ctx.parallelize(events, 4))
            assert out.count() == len(events)

    def test_broken_partitioner_caught_through_partition(self):
        class Bad(_BrokenAssign):
            def fit(self, sample):
                pass

            def partition(self, rdd):
                from repro.partitioners.base import STPartitioner

                return STPartitioner.partition(self, rdd)

        events = make_events(50)
        with EngineContext(default_parallelism=2, strict=True) as ctx:
            with pytest.raises(StrictModeViolation) as err:
                Bad().partition(ctx.parallelize(events, 2))
            assert err.value.rule == "REPRO110"
