"""Integration: every Table 7 application, identical results across the
three systems on shared seeded datasets."""

import math

import pytest

from repro.apps import (
    air_road,
    anomaly,
    avg_speed,
    case_road_flow,
    case_speed,
    grid_speed,
    hourly_flow,
    poi_count,
    stay_point,
    transition,
)
from repro.baselines import GeoMesaLike, GeoSparkLike
from repro.core import Pipeline, Selector
from repro.core.converters import Event2TsConverter
from repro.core.extractors import TsFlowExtractor
from repro.core.structures import TimeSeriesStructure
from repro.datasets import (
    AIR_BBOX,
    PORTO_BBOX,
    generate_air_records,
    generate_hangzhou_case,
    generate_nyc_events,
    generate_osm_areas,
    generate_osm_pois,
    generate_porto_trajectories,
)
from repro.datasets.air import AIR_START
from repro.datasets.common import EPOCH_2013
from repro.datasets.osm import OSM_BBOX
from repro.engine import EngineContext
from repro.geometry import Envelope
from repro.mapmatching import RoadNetwork
from repro.partitioners import TSTRPartitioner
from repro.stio import save_dataset
from repro.temporal import Duration

NYC_SQ = Envelope(-74.0, 40.65, -73.80, 40.85)
NYC_TQ = Duration(EPOCH_2013, EPOCH_2013 + 3 * 86_400.0)
PORTO_SQ = PORTO_BBOX.to_envelope()
PORTO_TQ = Duration(EPOCH_2013, EPOCH_2013 + 400 * 86_400.0)


@pytest.fixture(scope="module")
def ctx():
    return EngineContext(default_parallelism=4)


@pytest.fixture(scope="module")
def workspace(tmp_path_factory):
    """Shared seeded datasets persisted once for all three systems."""
    root = tmp_path_factory.mktemp("apps")
    ctx = EngineContext(default_parallelism=4)
    datasets = {
        "nyc": generate_nyc_events(1500, seed=71, days=5),
        "porto": generate_porto_trajectories(120, seed=72, days=5),
        "air": generate_air_records(8, hours=48, seed=73),
        "osm": generate_osm_pois(800, seed=74),
    }
    kinds = {"nyc": "event", "porto": "trajectory", "air": "event", "osm": "event"}
    for name, data in datasets.items():
        save_dataset(
            root / f"{name}_st4ml", data, kinds[name],
            partitioner=TSTRPartitioner(2, 2), ctx=ctx,
        )
        GeoSparkLike.ingest(data, root / f"{name}_gs")
        GeoMesaLike.ingest(data, root / f"{name}_gm", block_records=128)
    return root


def assert_float_lists_equal(a, b):
    assert len(a) == len(b)
    for x, y in zip(a, b):
        if x is None or y is None:
            assert x == y
        else:
            assert math.isclose(x, y, rel_tol=1e-9, abs_tol=1e-12)


class TestFigure7Apps:
    def test_anomaly_all_systems_agree(self, ctx, workspace):
        st = anomaly.run_st4ml(ctx, workspace / "nyc_st4ml", NYC_SQ, NYC_TQ)
        gm = anomaly.run_geomesa(ctx, workspace / "nyc_gm", NYC_SQ, NYC_TQ)
        gs = anomaly.run_geospark(ctx, workspace / "nyc_gs", NYC_SQ, NYC_TQ)
        assert st == gm == gs
        assert len(st) > 0

    def test_avg_speed_all_systems_agree(self, ctx, workspace):
        st = avg_speed.run_st4ml(ctx, workspace / "porto_st4ml", PORTO_SQ, PORTO_TQ)
        gm = avg_speed.run_geomesa(ctx, workspace / "porto_gm", PORTO_SQ, PORTO_TQ)
        gs = avg_speed.run_geospark(ctx, workspace / "porto_gs", PORTO_SQ, PORTO_TQ)
        assert set(st) == set(gm) == set(gs)
        for key in st:
            assert math.isclose(st[key], gm[key], rel_tol=1e-6)
            assert math.isclose(st[key], gs[key], rel_tol=1e-6)
        assert len(st) == 120

    def test_stay_point_all_systems_agree(self, ctx, workspace):
        st = stay_point.run_st4ml(ctx, workspace / "porto_st4ml", PORTO_SQ, PORTO_TQ)
        gm = stay_point.run_geomesa(ctx, workspace / "porto_gm", PORTO_SQ, PORTO_TQ)
        assert set(st) == set(gm)
        for key in st:
            assert len(st[key]) == len(gm[key])
            for (lon_a, lat_a), (lon_b, lat_b) in zip(st[key], gm[key]):
                assert math.isclose(lon_a, lon_b, abs_tol=1e-7)
                assert math.isclose(lat_a, lat_b, abs_tol=1e-7)

    def test_hourly_flow_all_systems_agree(self, ctx, workspace):
        st = hourly_flow.run_st4ml(ctx, workspace / "nyc_st4ml", NYC_SQ, NYC_TQ)
        gm = hourly_flow.run_geomesa(ctx, workspace / "nyc_gm", NYC_SQ, NYC_TQ)
        gs = hourly_flow.run_geospark(ctx, workspace / "nyc_gs", NYC_SQ, NYC_TQ)
        assert st == gm == gs
        assert sum(st) > 0
        assert len(st) == 72  # three days of hourly slots

    def test_grid_speed_all_systems_agree(self, ctx, workspace):
        st = grid_speed.run_st4ml(ctx, workspace / "porto_st4ml", PORTO_SQ, PORTO_TQ)
        gs = grid_speed.run_geospark(ctx, workspace / "porto_gs", PORTO_SQ, PORTO_TQ)
        assert_float_lists_equal(st, gs)

    def test_transition_all_systems_agree(self, ctx, workspace):
        st = transition.run_st4ml(ctx, workspace / "porto_st4ml", PORTO_SQ, PORTO_TQ)
        gm = transition.run_geomesa(ctx, workspace / "porto_gm", PORTO_SQ, PORTO_TQ)
        assert st == gm

    def test_air_road_all_systems_agree(self, ctx, workspace):
        network = RoadNetwork.grid(
            AIR_BBOX.min_lon, AIR_BBOX.min_lat, 3, 3, spacing_degrees=2.0
        )
        tq = Duration(AIR_START, AIR_START + 2 * 86_400.0)
        st = air_road.run_st4ml(ctx, workspace / "air_st4ml", AIR_BBOX.to_envelope(), tq, network)
        gm = air_road.run_geomesa(ctx, workspace / "air_gm", AIR_BBOX.to_envelope(), tq, network)
        assert len(st) == len(gm)
        for a, b in zip(st, gm):
            if a is None or b is None:
                assert a == b
                continue
            for field in a:
                assert math.isclose(a[field], b[field], rel_tol=1e-6)

    def test_poi_count_all_systems_agree(self, ctx, workspace):
        areas = generate_osm_areas(4, 3, seed=74)
        st = poi_count.run_st4ml(ctx, workspace / "osm_st4ml", OSM_BBOX.to_envelope(), areas)
        gm = poi_count.run_geomesa(ctx, workspace / "osm_gm", OSM_BBOX.to_envelope(), areas)
        gs = poi_count.run_geospark(ctx, workspace / "osm_gs", OSM_BBOX.to_envelope(), areas)
        assert st == gm == gs
        assert sum(st) == 800  # jittered areas tile: every POI lands somewhere


class TestCaseStudies:
    @pytest.fixture(scope="class")
    def hangzhou(self, tmp_path_factory):
        root = tmp_path_factory.mktemp("hz")
        ctx = EngineContext(default_parallelism=4)
        case = generate_hangzhou_case(120, seed=75, grid_rows=8, grid_cols=8)
        save_dataset(root / "st4ml", case.trajectories, "trajectory", ctx=ctx)
        GeoSparkLike.ingest(case.trajectories, root / "gs")
        return root, case

    def test_case_speed_agrees_with_geospark(self, ctx, hangzhou):
        root, case = hangzhou
        area = Envelope(120.10, 30.23, 120.22, 30.35)
        day = Duration(0, 86_400.0)
        st = case_speed.run_st4ml(ctx, root / "st4ml", area, day, districts_per_side=4)
        gs = case_speed.run_geospark(ctx, root / "gs", area, day, districts_per_side=4)
        assert len(st) == len(gs)
        for (n_a, v_a), (n_b, v_b) in zip(st, gs):
            assert n_a == n_b
            if v_a is None or v_b is None:
                assert v_a == v_b
            else:
                # Baseline timestamps round-trip through strings at
                # microsecond precision; speeds agree to ~1e-6 relative.
                assert math.isclose(v_a, v_b, rel_tol=1e-5)

    def test_case_road_flow_runs_and_covers_network(self, ctx, hangzhou):
        root, case = hangzhou
        area = Envelope(120.10, 30.23, 120.22, 30.35)
        flows = case_road_flow.run_st4ml(
            ctx, root / "st4ml", case.network, area, Duration(0, 86_400.0)
        )
        summary = case_road_flow.flow_summary(flows)
        assert summary["total_flow"] > 0
        # Route completion infers flow on more segments than cameras see
        # directly: coverage beyond the instrumented junction count.
        assert summary["segments_covered"] > len(case.camera_nodes) // 2


class TestPipeline:
    def test_pipeline_composes_three_stages(self, ctx, workspace):
        structure = TimeSeriesStructure.regular(NYC_TQ, 24)
        pipeline = Pipeline(
            selector=Selector(NYC_SQ, NYC_TQ),
            converter=Event2TsConverter(structure),
            extractor=TsFlowExtractor(),
        )
        flow = pipeline.run(ctx, workspace / "nyc_st4ml")
        assert flow.n_cells == 24
        assert sum(flow.cell_values()) > 0

    def test_pipeline_without_converter(self, ctx, workspace):
        pipeline = Pipeline(selector=Selector(NYC_SQ, NYC_TQ))
        rdd = pipeline.run(ctx, workspace / "nyc_st4ml")
        assert rdd.count() > 0
