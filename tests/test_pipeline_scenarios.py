"""Scenario tests: duplication semantics, parallel mode, conversion chains."""

import math

from repro.core import InstanceRDD, Selector
from repro.core.converters import (
    Raster2SmConverter,
    Raster2TsConverter,
    Traj2RasterConverter,
)
from repro.core.extractors import RasterFlowExtractor, TrajCompanionExtractor
from repro.core.structures import RasterStructure
from repro.engine import EngineContext
from repro.geometry import Envelope
from repro.instances import Trajectory
from repro.partitioners import STRPartitioner, TSTRPartitioner
from repro.temporal import Duration
from tests.conftest import make_events, make_trajectories


class TestDuplicationSemantics:
    def test_companion_pairs_recovered_with_duplication(self):
        """A companion pair straddling a partition boundary is only found
        when boundary duplication is on — the correctness reason for
        Algorithm 1's duplicate flag."""
        ctx = EngineContext(default_parallelism=4)
        # Two trajectories hugging x=5 from both sides, plus fit fodder.
        a = Trajectory.of_points([(4.9995, 5.0, 0), (4.9995, 5.0, 60)], data="west")
        b = Trajectory.of_points([(5.0005, 5.0, 30), (5.0005, 5.0, 90)], data="east")
        filler = make_trajectories(60, seed=91)
        rdd = ctx.parallelize([a, b] + filler, 4)

        def find_pairs(duplicate: bool) -> set:
            p = STRPartitioner(8)
            partitioned = p.partition(rdd, duplicate=duplicate, seed=5)
            pairs = TrajCompanionExtractor(500.0, 120.0).extract(partitioned)
            return {frozenset(pair) for pair in pairs.collect()}

        with_dup = find_pairs(True)
        assert frozenset({"west", "east"}) in with_dup
        # Without duplication the pair *may* be split apart; duplication
        # can only ever add pairs, never lose them.
        without_dup = find_pairs(False)
        assert without_dup <= with_dup

    def test_duplicate_selection_preserves_distinct_results(self):
        ctx = EngineContext(default_parallelism=4)
        events = make_events(200, seed=92)
        selector = Selector(
            Envelope(0, 0, 10, 10), Duration(0, 90_000),
            partitioner=TSTRPartitioner(2, 2), duplicate=True,
        )
        out = selector.select(ctx, events)
        ids = [ev.data for ev in out.collect()]
        # Point events on partition boundaries may duplicate, but the
        # distinct id set must equal the input set.
        assert set(ids) == {ev.data for ev in events}


class TestParallelModeEquivalence:
    def test_full_pipeline_parallel_equals_sequential(self):
        events_trajs = make_trajectories(60, seed=93)
        structure = RasterStructure.regular(
            Envelope(0, 0, 10, 10), Duration(0, 90_000), 3, 3, 4
        )

        def run(parallel: bool):
            ctx = EngineContext(default_parallelism=4, parallel=parallel)
            rdd = ctx.parallelize(events_trajs, 4)
            selected = Selector(
                Envelope(0, 0, 10, 10), Duration(0, 90_000)
            ).select(ctx, rdd)
            converted = Traj2RasterConverter(structure).convert(selected)
            flows = RasterFlowExtractor().extract(converted).cell_values()
            ctx.stop()
            return flows

        assert run(False) == run(True)


class TestConversionChains:
    def test_raster_to_sm_to_counts(self):
        """The paper's chained-conversion pattern: raster → spatial map by
        regrouping cells, preserving totals."""
        ctx = EngineContext(default_parallelism=2)
        trajs = make_trajectories(30, seed=94)
        structure = RasterStructure.regular(
            Envelope(0, 0, 10, 10), Duration(0, 90_000), 3, 3, 4
        )
        raster_rdd = Traj2RasterConverter(structure).convert(
            ctx.parallelize(trajs, 2)
        )
        counted = InstanceRDD(raster_rdd).map_value(len).rdd
        sm_rdd = Raster2SmConverter(lambda a, b: a + b).convert(counted)
        ts_rdd = Raster2TsConverter(lambda a, b: a + b).convert(counted)

        raster_total = (
            InstanceRDD(counted)
            .merge_instances(lambda a, b: a + b)
            .cell_values()
        )
        sm_total = InstanceRDD(sm_rdd).merge_instances(lambda a, b: a + b).cell_values()
        ts_total = InstanceRDD(ts_rdd).merge_instances(lambda a, b: a + b).cell_values()
        assert sum(raster_total) == sum(sm_total) == sum(ts_total)
        assert len(sm_total) == 9
        assert len(ts_total) == 4

    def test_spatial_grouping_matches_direct_count(self):
        ctx = EngineContext(default_parallelism=2)
        trajs = make_trajectories(25, seed=95)
        structure = RasterStructure.regular(
            Envelope(0, 0, 10, 10), Duration(0, 90_000), 2, 2, 3
        )
        raster_rdd = Traj2RasterConverter(structure).convert(ctx.parallelize(trajs, 2))
        counted = InstanceRDD(raster_rdd).map_value(len).rdd
        sm = (
            InstanceRDD(Raster2SmConverter(lambda a, b: a + b).convert(counted))
            .merge_instances(lambda a, b: a + b)
        )
        merged_raster = InstanceRDD(counted).merge_instances(lambda a, b: a + b)
        # Sum the merged raster's cells per spatial geometry by hand.
        by_geom = {}
        for entry in merged_raster.entries:
            by_geom[entry.spatial] = by_geom.get(entry.spatial, 0) + entry.value
        for entry in sm.entries:
            assert entry.value == by_geom[entry.spatial]


class TestMetricsAcrossPipeline:
    def test_pipeline_shuffle_budget(self):
        """The canonical pipeline shuffles data exactly once (partitioning);
        conversion and extraction move only partials."""
        ctx = EngineContext(default_parallelism=4)
        trajs = make_trajectories(50, seed=96)
        ctx.metrics.reset()
        selected = Selector(
            Envelope(0, 0, 10, 10), Duration(0, 90_000),
            partitioner=TSTRPartitioner(2, 2),
        ).select(ctx, ctx.parallelize(trajs, 4))
        structure = RasterStructure.regular(
            Envelope(0, 0, 10, 10), Duration(0, 90_000), 3, 3, 4
        )
        converted = Traj2RasterConverter(structure).convert(selected)
        RasterFlowExtractor().extract(converted)
        snap = ctx.metrics.snapshot()
        assert snap["shuffles"] == 1
        assert snap["shuffle_records"] <= len(trajs)
        assert snap["broadcasts"] == 1

    def test_speed_values_finite(self):
        ctx = EngineContext(default_parallelism=2)
        trajs = make_trajectories(20, seed=97)
        structure = RasterStructure.regular(
            Envelope(0, 0, 10, 10), Duration(0, 90_000), 2, 2, 2
        )
        from repro.core.extractors import RasterSpeedExtractor

        converted = Traj2RasterConverter(structure).convert(ctx.parallelize(trajs, 2))
        for count, speed in RasterSpeedExtractor().extract(converted).cell_values():
            assert count >= 0
            if speed is not None:
                assert math.isfinite(speed) and speed >= 0
