"""ML output layer tests: tensors, export, forecaster."""

import math

import numpy as np
import pytest

from repro.geometry import Envelope
from repro.instances import Raster, SpatialMap, TimeSeries
from repro.ml import (
    RidgeForecaster,
    features_to_csv,
    features_to_json,
    raster_to_matrix_sequence,
    sliding_window_dataset,
    spatial_map_to_matrix,
    time_series_to_vector,
    train_test_split_windows,
)
from repro.ml.export import load_features_json
from repro.ml.forecast import naive_last_value_rmse
from repro.temporal import Duration


class TestTensors:
    def test_time_series_vector(self):
        ts = TimeSeries.regular(Duration(0, 30), 10.0).with_cell_values([1, None, 3])
        vec = time_series_to_vector(ts)
        assert vec.tolist() == [1.0, 0.0, 3.0]

    def test_spatial_map_matrix_layout(self):
        sm = SpatialMap.regular(Envelope(0, 0, 3, 2), 3, 2).with_cell_values(
            [1, 2, 3, 4, 5, 6]
        )
        matrix = spatial_map_to_matrix(sm, nx=3, ny=2)
        # Row-major (y-outer): first row is cells 0..2.
        assert matrix.tolist() == [[1, 2, 3], [4, 5, 6]]

    def test_spatial_map_shape_mismatch(self):
        sm = SpatialMap.regular(Envelope(0, 0, 2, 2), 2, 2)
        with pytest.raises(ValueError):
            spatial_map_to_matrix(sm, nx=3, ny=3)

    def test_raster_matrix_sequence(self):
        raster = Raster.regular(Envelope(0, 0, 2, 1), Duration(0, 2), 2, 1, 2)
        # Cells: (cell0, t0), (cell0, t1), (cell1, t0), (cell1, t1)
        raster = raster.with_cell_values([10, 11, 20, 21])
        tensor = raster_to_matrix_sequence(raster, nx=2, ny=1, nt=2)
        assert tensor.shape == (2, 1, 2)
        assert tensor[0].tolist() == [[10, 20]]
        assert tensor[1].tolist() == [[11, 21]]

    def test_raster_none_fill(self):
        raster = Raster.regular(Envelope(0, 0, 1, 1), Duration(0, 2), 1, 1, 2)
        raster = raster.with_cell_values([None, 5])
        tensor = raster_to_matrix_sequence(raster, 1, 1, 2, fill=-1.0)
        assert tensor[0, 0, 0] == -1.0
        assert tensor[1, 0, 0] == 5.0

    def test_sliding_window_shapes(self):
        seq = np.arange(10, dtype=float).reshape(10, 1)
        X, y = sliding_window_dataset(seq, history=3, horizon=1)
        assert X.shape == (7, 3)
        assert y.shape == (7, 1)
        assert X[0].tolist() == [0, 1, 2]
        assert y[0][0] == 3

    def test_sliding_window_horizon(self):
        seq = np.arange(10, dtype=float)
        X, y = sliding_window_dataset(seq, history=2, horizon=3)
        assert y[0][0] == 4  # two history + horizon 3 → index 4

    def test_sliding_window_too_short(self):
        with pytest.raises(ValueError):
            sliding_window_dataset(np.arange(3, dtype=float), history=3, horizon=1)


class TestExport:
    @pytest.fixture
    def instance(self):
        return TimeSeries.regular(Duration(0, 20), 10.0).with_cell_values([4, 9])

    def test_json_roundtrip(self, tmp_path, instance):
        path = features_to_json(tmp_path / "f.json", instance)
        doc = load_features_json(path)
        assert doc["instance_type"] == "TimeSeries"
        assert doc["n_cells"] == 2
        assert [c["value"] for c in doc["cells"]] == [4, 9]
        assert doc["cells"][0]["t_start"] == 0.0
        assert doc["cells"][1]["t_end"] == 20.0

    def test_csv_export(self, tmp_path, instance):
        import csv

        path = features_to_csv(tmp_path / "f.csv", instance)
        with open(path, newline="") as f:
            rows = list(csv.DictReader(f))
        assert len(rows) == 2
        assert rows[0]["value"] == "4"

    def test_value_encoder(self, tmp_path, instance):
        path = features_to_json(
            tmp_path / "f.json", instance, value_encoder=lambda v: v * 10
        )
        doc = load_features_json(path)
        assert [c["value"] for c in doc["cells"]] == [40, 90]


class TestForecaster:
    def _rhythmic_sequence(self, n=200, cells=4, seed=3):
        rng = np.random.default_rng(seed)
        t = np.arange(n)
        base = 30 + 10 * np.sin(2 * math.pi * t / 24)
        seq = np.stack(
            [base + i * 2 + rng.normal(0, 0.5, n) for i in range(cells)], axis=1
        )
        return seq

    def test_learns_rhythm_beats_naive(self):
        seq = self._rhythmic_sequence()
        X, y = sliding_window_dataset(seq, history=24)
        X_tr, y_tr, X_te, y_te = train_test_split_windows(X, y)
        model = RidgeForecaster(alpha=1e-3).fit(X_tr, y_tr)
        model_rmse = model.score_rmse(X_te, y_te)
        naive_rmse = naive_last_value_rmse(X_te, y_te, feature_size=seq.shape[1])
        assert model_rmse < naive_rmse * 0.7

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            RidgeForecaster().predict(np.zeros((1, 2)))

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            RidgeForecaster().fit(np.zeros((3, 2)), np.zeros(4))

    def test_negative_alpha_rejected(self):
        with pytest.raises(ValueError):
            RidgeForecaster(alpha=-1)

    def test_split_chronological(self):
        X = np.arange(10)[:, None].astype(float)
        y = np.arange(10).astype(float)
        X_tr, y_tr, X_te, y_te = train_test_split_windows(X, y, 0.7)
        assert X_tr.shape[0] == 7
        assert X_te[0][0] == 7.0  # strictly after training data

    def test_split_validation(self):
        X = np.zeros((2, 1))
        y = np.zeros(2)
        with pytest.raises(ValueError):
            train_test_split_windows(X, y, 1.5)

    def test_multioutput_prediction_shape(self):
        X = np.random.default_rng(0).normal(size=(50, 6))
        y = X @ np.random.default_rng(1).normal(size=(6, 3))
        model = RidgeForecaster(alpha=1e-6).fit(X, y)
        assert model.predict(X).shape == (50, 3)
        assert model.score_rmse(X, y) < 1e-6
