"""Workload generation tests + instance-flexibility demonstrations."""

import pytest

from repro.datasets import NYC_BBOX
from repro.datasets.common import EPOCH_2013
from repro.workloads import STQuery, anchored_query, random_queries


class TestAnchoredQuery:
    def test_ratio_coverage(self):
        q = anchored_query(NYC_BBOX, EPOCH_2013, 0.5, days=30)
        assert q.spatial.width == pytest.approx(NYC_BBOX.width * 0.5)
        assert q.temporal.length == pytest.approx(30 * 86_400 * 0.5)

    def test_full_range(self):
        q = anchored_query(NYC_BBOX, EPOCH_2013, 1.0)
        assert q.spatial.max_x == pytest.approx(NYC_BBOX.max_lon)

    def test_anchored_at_low_corner(self):
        q = anchored_query(NYC_BBOX, EPOCH_2013, 0.2)
        assert q.spatial.min_x == NYC_BBOX.min_lon
        assert q.temporal.start == EPOCH_2013


class TestRandomQueries:
    def test_count_and_determinism(self):
        a = random_queries(NYC_BBOX, EPOCH_2013, 5, seed=3)
        b = random_queries(NYC_BBOX, EPOCH_2013, 5, seed=3)
        assert len(a) == 5
        assert [q.as_tuple() for q in a] == [q.as_tuple() for q in b]

    def test_queries_within_bounds(self):
        for q in random_queries(NYC_BBOX, EPOCH_2013, 20, seed=4, s_ratio=0.3, t_ratio=0.1):
            assert q.spatial.min_x >= NYC_BBOX.min_lon
            assert q.spatial.max_x <= NYC_BBOX.max_lon + 1e-9
            assert q.temporal.start >= EPOCH_2013
            assert q.temporal.end <= EPOCH_2013 + 30 * 86_400 + 1e-6

    def test_independent_ratios(self):
        q = random_queries(NYC_BBOX, EPOCH_2013, 1, s_ratio=0.8, t_ratio=0.05)[0]
        assert q.spatial.width == pytest.approx(NYC_BBOX.width * 0.8)
        assert q.temporal.length == pytest.approx(30 * 86_400 * 0.05)

    def test_validation(self):
        with pytest.raises(ValueError):
            random_queries(NYC_BBOX, EPOCH_2013, 0)
        with pytest.raises(ValueError):
            random_queries(NYC_BBOX, EPOCH_2013, 1, s_ratio=1.5)

    def test_stquery_tuple(self):
        q = random_queries(NYC_BBOX, EPOCH_2013, 1)[0]
        assert isinstance(q, STQuery)
        spatial, temporal = q.as_tuple()
        assert spatial is q.spatial and temporal is q.temporal


class TestInstanceFlexibility:
    """Paper §3.2.1: 'with the design of flexible value and data fields,
    the five instances can theoretically represent any data type' — the
    3-d mesh example."""

    def test_mesh_cell_as_event(self):
        from repro.geometry import Polygon
        from repro.instances import Event
        from repro.temporal import Duration

        # A mesh cell projected to a reference surface; the 3-d detail
        # (vertices, edges, faces) rides in the value field.
        footprint = Polygon([(0, 0), (1, 0), (1, 1), (0, 1)])
        mesh_detail = {
            "vertices": [(0, 0, 5.0), (1, 0, 5.2), (1, 1, 4.9), (0, 1, 5.1)],
            "faces": [(0, 1, 2), (0, 2, 3)],
        }
        cell = Event(footprint, Duration.instant(0.0), value=mesh_detail, data="cell-7")
        assert cell.spatial_extent.area == 1.0
        assert len(cell.value["faces"]) == 2

    def test_mesh_events_selectable_and_convertible(self):
        from repro.core import Selector
        from repro.core.converters import Event2SmConverter
        from repro.core.structures import SpatialMapStructure
        from repro.engine import EngineContext
        from repro.geometry import Envelope, Polygon
        from repro.instances import Event
        from repro.temporal import Duration

        cells = [
            Event(
                Polygon([(i, 0), (i + 1, 0), (i + 1, 1), (i, 1)]),
                Duration.instant(0.0),
                value={"height": float(i)},
                data=i,
            )
            for i in range(6)
        ]
        ctx = EngineContext(2)
        selected = Selector(Envelope(0, 0, 3, 1), Duration(-1, 1)).select(ctx, cells)
        assert selected.count() == 4  # cells 0-2 inside, cell 3 touches x=3
        structure = SpatialMapStructure.regular(Envelope(0, 0, 6, 1), 3, 1)
        merged = Event2SmConverter(structure).convert_merged(ctx.parallelize(cells, 2))
        assert sum(len(v) for v in merged.cell_values()) >= 6
