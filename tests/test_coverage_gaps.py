"""Targeted tests for remaining API surface."""

import pytest

from repro.baselines.records import record_centroid, record_envelope
from repro.core.extractors import SmFlowExtractor
from repro.core.converters import Event2SmConverter
from repro.core.structures import SpatialMapStructure
from repro.engine import EngineContext
from repro.geometry import Envelope, Point, Polygon
from repro.instances import Event, Trajectory
from repro.mapmatching import RoadNetwork
from tests.conftest import make_events


class TestEnvelopeExtras:
    def test_corners_order(self):
        corners = list(Envelope(0, 0, 2, 3).corners())
        assert corners == [(0, 0), (2, 0), (2, 3), (0, 3)]

    def test_to_polygon(self):
        poly = Envelope(0, 0, 2, 3).to_polygon()
        assert isinstance(poly, Polygon)
        assert poly.area == 6.0

    def test_envelope_intersects_polygon_dispatch(self):
        env = Envelope(0, 0, 2, 2)
        tri = Polygon([(1, 1), (3, 1), (1, 3)])
        assert env.intersects(tri)
        assert tri.intersects(env)


class TestExtractValuesHelper:
    def test_extract_values_matches_extract(self):
        ctx = EngineContext(default_parallelism=2)
        events = make_events(100, seed=99)
        structure = SpatialMapStructure.regular(Envelope(0, 0, 10, 10), 3, 3)
        converted = Event2SmConverter(structure).convert(
            ctx.parallelize(events, 2)
        ).persist()
        converted.count()
        extractor = SmFlowExtractor()
        assert extractor.extract_values(converted) == extractor.extract(
            converted
        ).cell_values()


class TestBaselineRecordHelpers:
    def test_record_centroid_event(self):
        from repro.baselines import instance_to_geo_record

        record = instance_to_geo_record(Event.of_point(3.0, 4.0, 0.0))
        assert record_centroid(record) == (3.0, 4.0)

    def test_record_centroid_trajectory(self):
        from repro.baselines import instance_to_geo_record

        traj = Trajectory.of_points([(0, 0, 0), (2, 2, 10)], data="t")
        record = instance_to_geo_record(traj)
        assert record_centroid(record) == (1.0, 1.0)

    def test_record_envelope(self):
        from repro.baselines import instance_to_geo_record

        traj = Trajectory.of_points([(0, 1, 0), (2, -1, 10)], data="t")
        assert record_envelope(instance_to_geo_record(traj)) == (0, -1, 2, 1)


class TestRouteDistances:
    @pytest.fixture
    def net(self):
        return RoadNetwork.grid(0.0, 0.0, 3, 3, spacing_degrees=0.01)

    def test_route_distance_adjacent_segments(self, net):
        # Find two segments sharing a junction: a.to_node == b.from_node.
        seg_a = net.segments[0]
        seg_b = next(
            s for s in net.segments
            if s.from_node == seg_a.to_node and s.segment_id != seg_a.segment_id
        )
        d = net.route_distance_meters(seg_a.segment_id, 0.5, seg_b.segment_id, 0.5)
        expected = 0.5 * seg_a.length_meters + 0.5 * seg_b.length_meters
        assert d == pytest.approx(expected, rel=1e-9)

    def test_route_distance_respects_cutoff(self, net):
        import math

        first = net.segments[0].segment_id
        last = net.segments[-1].segment_id
        d = net.route_distance_meters(first, 0.0, last, 1.0, cutoff_meters=1.0)
        assert math.isinf(d)

    def test_candidate_segments_cap(self, net):
        hits = net.candidate_segments(0.01, 0.01, radius_meters=5_000, max_candidates=3)
        assert len(hits) == 3


class TestGeometryDispatchMatrix:
    """Intersection must be symmetric across every geometry pair type."""

    PAIRS = [
        (Point(1, 1), Envelope(0, 0, 2, 2)),
        (Point(1, 1), Polygon([(0, 0), (3, 0), (0, 3)])),
        (Envelope(0, 0, 2, 2), Polygon([(1, 1), (4, 1), (1, 4)])),
    ]

    @pytest.mark.parametrize("a,b", PAIRS)
    def test_symmetry_positive(self, a, b):
        assert a.intersects(b)
        assert b.intersects(a)

    NEG_PAIRS = [
        (Point(9, 9), Envelope(0, 0, 2, 2)),
        (Point(9, 9), Polygon([(0, 0), (3, 0), (0, 3)])),
        (Envelope(8, 8, 9, 9), Polygon([(0, 0), (3, 0), (0, 3)])),
    ]

    @pytest.mark.parametrize("a,b", NEG_PAIRS)
    def test_symmetry_negative(self, a, b):
        assert not a.intersects(b)
        assert not b.intersects(a)
