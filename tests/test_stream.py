"""Streaming: ingestion, watermarks, incremental parity, windows.

The load-bearing suite here is the **incremental parity gate**: a
dataset fed in K micro-batches and processed by
``Pipeline.run_incremental`` must produce bit-identical extraction
output to a single batch run over the union — on all three backends,
with the float-summing speed extractor (where merge order shows up in
the last bit), and with chaos-injected worker loss mid-batch.
"""

from __future__ import annotations

import json

import pytest

from repro.core import Pipeline, Selector, TimeSeriesStructure
from repro.core.converters import Event2TsConverter, Traj2TsConverter
from repro.core.extractors import TsFlowExtractor, TsSpeedExtractor
from repro.engine import EngineContext
from repro.engine.faults import FaultPlan, FaultRule, PipelineCheckpoint
from repro.geometry import Envelope
from repro.instances import Event
from repro.obs.tracer import Tracer, installed
from repro.partitioners import TSTRPartitioner
from repro.stio import StDataset
from repro.stio.metadata import DatasetMetadata
from repro.stream import (
    StaleStreamStateError,
    StreamState,
    WindowedFlowExtractor,
    WindowedSpeedExtractor,
)
from repro.temporal import Duration
from tests.conftest import make_events, make_trajectories

ALL_BACKENDS = ["sequential", "thread", "process"]

AREA = Envelope(0.0, 0.0, 10.0, 10.0)
DAY = 86_400.0


def make_ctx(backend: str = "sequential", **kwargs) -> EngineContext:
    options = kwargs.pop("backend_options", {})
    if backend == "process":
        options.setdefault("warmup", False)
    return EngineContext(
        default_parallelism=4,
        backend=backend,
        backend_options=options or None,
        **kwargs,
    )


def event_batches(k: int = 4, per_batch: int = 250) -> list[list[Event]]:
    """K seeded micro-batches, batch i covering day i."""
    batches = []
    for i in range(k):
        day = make_events(per_batch, seed=100 + i, t_extent=DAY)
        batches.append(
            [
                Event.of_point(
                    e.spatial.x,
                    e.spatial.y,
                    e.temporal.start + i * DAY,
                    data=e.data,
                )
                for e in day
            ]
        )
    return batches


def flow_pipeline(days: int = 4) -> Pipeline:
    span = Duration(0.0, days * DAY)
    return Pipeline(
        selector=Selector(AREA, span),
        converter=Event2TsConverter(
            TimeSeriesStructure.of_interval(span, 6 * 3_600.0)
        ),
        extractor=TsFlowExtractor(),
    )


# ---------------------------------------------------------------------------
# Watermark persistence


class TestWatermark:
    def test_round_trips_through_metadata(self, tmp_path):
        StDataset.write(tmp_path / "ds", [[ ]], "event", watermark=123.5)
        assert DatasetMetadata.load(tmp_path / "ds").watermark == 123.5

    def test_absent_by_default(self, tmp_path):
        StDataset.write(tmp_path / "ds", [make_events(10)], "event")
        meta = DatasetMetadata.load(tmp_path / "ds")
        assert meta.watermark is None
        assert "watermark" not in json.loads(
            (tmp_path / "ds" / "metadata.json").read_text()
        )

    def test_merge_keeps_max(self):
        a = DatasetMetadata("event", [], watermark=100.0)
        b = DatasetMetadata("event", [], watermark=50.0)
        assert a.merged_with(b).watermark == 100.0
        assert b.merged_with(a).watermark == 100.0

    def test_merge_with_absent_side(self):
        a = DatasetMetadata("event", [], watermark=100.0)
        b = DatasetMetadata("event", [])
        assert a.merged_with(b).watermark == 100.0
        assert b.merged_with(a).watermark == 100.0
        assert b.merged_with(b).watermark is None

    def test_in_place_rewrite_preserves_watermark(self, tmp_path):
        events = make_events(50)
        StDataset.write(tmp_path / "ds", [events], "event", watermark=77.0)
        StDataset.write(tmp_path / "ds", [events[:25], events[25:]], "event")
        meta = DatasetMetadata.load(tmp_path / "ds")
        assert meta.watermark == 77.0
        assert meta.generation == 1

    def test_convert_preserves_watermark(self, tmp_path, ctx):
        StDataset.write(tmp_path / "ds", [make_events(40)], "event", watermark=9.0)
        out = StDataset(tmp_path / "ds").convert("v2", out=tmp_path / "v2")
        assert out.metadata().watermark == 9.0


# ---------------------------------------------------------------------------
# Ingestion


class TestIngest:
    def test_first_ingest_creates_dataset(self, tmp_path):
        batch = make_events(100, t_extent=DAY)
        report = StDataset(tmp_path / "feed").ingest(batch, instance_type="event")
        assert report.records == 100
        assert report.blocks_added == 1
        assert report.watermark == max(e.temporal.end for e in batch)
        assert report.previous_watermark is None
        assert report.advanced
        meta = DatasetMetadata.load(tmp_path / "feed")
        assert meta.watermark == report.watermark

    def test_first_ingest_requires_instance_type(self, tmp_path):
        with pytest.raises(ValueError, match="instance_type"):
            StDataset(tmp_path / "feed").ingest(make_events(5))

    def test_batches_continue_numbering_and_bump_generation(self, tmp_path):
        ds = StDataset(tmp_path / "feed")
        for i, batch in enumerate(event_batches(3)):
            kwargs = {"instance_type": "event"} if i == 0 else {}
            ds.ingest(batch, partitioner=TSTRPartitioner(1, 2), **kwargs)
        meta = ds.metadata()
        assert meta.generation == 2  # creation is gen 0, two appends
        names = [p.filename for p in meta.partitions]
        assert names == sorted(names)
        assert len(set(names)) == len(names)

    def test_watermark_advances_per_batch(self, tmp_path):
        ds = StDataset(tmp_path / "feed")
        highs = []
        for batch in event_batches(3):
            report = ds.ingest(batch, instance_type="event")
            highs.append(max(e.temporal.end for e in batch))
            assert report.watermark == max(highs)

    def test_late_batch_counted_not_dropped_and_mark_holds(self, tmp_path):
        ds = StDataset(tmp_path / "feed")
        day0, day1 = event_batches(2)
        ds.ingest(day1, instance_type="event")  # day 1 first
        mark = ds.metadata().watermark
        report = ds.ingest(day0)  # day 0 arrives late
        assert report.late_records == len(day0)
        assert report.watermark == mark  # monotone: no regression
        assert not report.advanced
        assert report.watermark_lag > 0
        assert ds.metadata().total_records == len(day0) + len(day1)

    def test_empty_batch_is_a_noop(self, tmp_path):
        ds = StDataset(tmp_path / "feed")
        ds.ingest(make_events(10), instance_type="event")
        before = ds.metadata()
        report = ds.ingest([])
        assert report.records == 0 and report.blocks_added == 0
        after = ds.metadata()
        assert after.generation == before.generation
        assert after.watermark == before.watermark

    def test_ingest_partitioner_fits_batch_alone(self, tmp_path):
        """T-STR maintenance: each batch gets its own cells; resident
        blocks are untouched (byte-identical before and after)."""
        ds = StDataset(tmp_path / "feed")
        ds.ingest(event_batches(1)[0], partitioner=TSTRPartitioner(2, 2),
                  instance_type="event")
        first_blocks = {
            p.filename: (tmp_path / "feed" / p.filename).read_bytes()
            for p in ds.metadata().partitions
        }
        ds.ingest(event_batches(2)[1], partitioner=TSTRPartitioner(2, 2))
        for name, blob in first_blocks.items():
            assert (tmp_path / "feed" / name).read_bytes() == blob

    def test_counters_reach_the_tracer(self, tmp_path):
        tracer = Tracer()
        with installed(tracer):
            ds = StDataset(tmp_path / "feed")
            day0, day1 = event_batches(2)
            ds.ingest(day1, instance_type="event")
            ds.ingest(day0)  # late
        assert tracer.counters["ingest_batches"] == 2
        assert tracer.counters["ingest_records"] == len(day0) + len(day1)
        assert tracer.counters["ingest_late_records"] == len(day0)
        assert tracer.counters["watermark_lag"] > 0


# ---------------------------------------------------------------------------
# Compaction


class TestCompaction:
    def test_threshold_triggers_rebalance(self, tmp_path):
        ds = StDataset(tmp_path / "feed")
        for batch in event_batches(4, per_batch=100):
            report = ds.ingest(
                batch,
                partitioner=TSTRPartitioner(1, 2),
                rebalance_threshold=6,
                instance_type="event",
            )
        assert report.compacted
        assert report.blocks_compacted > 6
        meta = ds.metadata()
        assert len(meta.partitions) <= 6
        assert meta.total_records == 400

    def test_compaction_preserves_watermark_and_bumps_generation(self, tmp_path):
        ds = StDataset(tmp_path / "feed")
        for batch in event_batches(3, per_batch=80):
            ds.ingest(batch, partitioner=TSTRPartitioner(1, 2),
                      instance_type="event")
        before = ds.metadata()
        replaced = ds.compact(TSTRPartitioner(2, 1))
        assert replaced == len(before.partitions)
        after = ds.metadata()
        assert after.watermark == before.watermark
        assert after.generation == before.generation + 1
        assert after.total_records == before.total_records

    def test_compaction_removes_orphan_blocks(self, tmp_path):
        ds = StDataset(tmp_path / "feed")
        for batch in event_batches(4, per_batch=60):
            ds.ingest(batch, partitioner=TSTRPartitioner(1, 2),
                      instance_type="event")
        ds.compact(TSTRPartitioner(1, 1))
        named = {p.filename for p in ds.metadata().partitions}
        on_disk = {p.name for p in (tmp_path / "feed").glob("part-*")}
        assert on_disk == named

    def test_compaction_counter(self, tmp_path):
        tracer = Tracer()
        ds = StDataset(tmp_path / "feed")
        for batch in event_batches(2, per_batch=50):
            ds.ingest(batch, partitioner=TSTRPartitioner(1, 2),
                      instance_type="event")
        with installed(tracer):
            replaced = ds.compact()
        assert tracer.counters["blocks_compacted"] == replaced


# ---------------------------------------------------------------------------
# Offset reads


class TestOffsetRead:
    def test_offset_skips_leading_blocks(self, tmp_path, ctx):
        ds = StDataset(tmp_path / "feed")
        batches = event_batches(3, per_batch=40)
        for batch in batches:
            ds.ingest(batch, instance_type="event")
        rdd, stats = ds.read(ctx, offset=1)
        assert stats.partitions_total == 2
        assert rdd.count() == len(batches[1]) + len(batches[2])

    def test_offset_composes_with_pruning(self, tmp_path, ctx):
        ds = StDataset(tmp_path / "feed")
        for batch in event_batches(3, per_batch=40):
            ds.ingest(batch, instance_type="event")
        day1 = Duration(1 * DAY, 2 * DAY)
        _, stats = ds.read(ctx, temporal=day1, offset=2)
        assert stats.partitions_selected == 0  # block 2 is day 2


# ---------------------------------------------------------------------------
# The incremental parity gate


class TestIncrementalParity:
    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_flow_parity_k_batches(self, tmp_path, backend):
        ctx = make_ctx(backend)
        ds = StDataset(tmp_path / "feed")
        pipe = flow_pipeline()
        state = None
        for batch in event_batches(4):
            ds.ingest(batch, partitioner=TSTRPartitioner(1, 2),
                      instance_type="event")
            run = pipe.run_incremental(ctx, tmp_path / "feed", state=state)
            state = run.state
        batch_result = flow_pipeline().run(make_ctx(), tmp_path / "feed")
        assert run.result.cell_values() == batch_result.cell_values()
        assert state.watermark == ds.metadata().watermark

    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_speed_parity_is_bit_identical(self, tmp_path, backend):
        """Float sums expose merge-order differences in the last bit."""
        ctx = make_ctx(backend)
        trajs = make_trajectories(120, seed=5)
        t_lo = min(t.temporal_extent.start for t in trajs)
        t_hi = max(t.temporal_extent.end for t in trajs)
        span = Duration(t_lo, t_hi)

        def pipe():
            return Pipeline(
                selector=Selector(AREA, span),
                converter=Traj2TsConverter(
                    TimeSeriesStructure.of_interval(span, (t_hi - t_lo) / 8)
                ),
                extractor=TsSpeedExtractor(),
            )

        ds = StDataset(tmp_path / "feed")
        runner = pipe()
        state = None
        for i in range(4):
            ds.ingest(trajs[i * 30:(i + 1) * 30],
                      partitioner=TSTRPartitioner(2, 1),
                      instance_type="trajectory")
            run = runner.run_incremental(ctx, tmp_path / "feed", state=state)
            state = run.state
        batch_vals = pipe().run(make_ctx(), tmp_path / "feed").cell_values()
        inc_vals = run.result.cell_values()
        assert all(
            (a is None and b is None) or a == b  # bit-equal, not approx
            for a, b in zip(inc_vals, batch_vals)
        )
        assert len(inc_vals) == len(batch_vals)

    def test_parity_survives_worker_loss_mid_batch(self, tmp_path):
        plan = FaultPlan(
            [FaultRule("worker_kill", probability=0.3)], seed=11
        )
        ctx = make_ctx("process", fault_plan=plan)
        ds = StDataset(tmp_path / "feed")
        pipe = flow_pipeline()
        state = None
        for batch in event_batches(4):
            ds.ingest(batch, partitioner=TSTRPartitioner(1, 2),
                      instance_type="event")
            run = pipe.run_incremental(ctx, tmp_path / "feed", state=state)
            state = run.state
        batch_result = flow_pipeline().run(make_ctx(), tmp_path / "feed")
        assert run.result.cell_values() == batch_result.cell_values()

    def test_columnar_and_scalar_agree(self, tmp_path):
        ctx = make_ctx()
        ds = StDataset(tmp_path / "feed")
        for batch in event_batches(3):
            ds.ingest(batch, instance_type="event")

        def pipe(columnar):
            p = flow_pipeline(days=3)
            p.extractor.use_columnar = columnar
            return p

        results = []
        for columnar in (True, False):
            state = None
            run = pipe(columnar).run_incremental(ctx, tmp_path / "feed")
            results.append(run.result.cell_values())
        assert results[0] == results[1]

    def test_pruned_batch_contributes_nothing_but_advances(self, tmp_path):
        """A batch entirely outside the query range adds no partials —
        exactly like the batch run, where its blocks are pruned."""
        ctx = make_ctx()
        ds = StDataset(tmp_path / "feed")
        day0, day1 = event_batches(2)
        pipe = flow_pipeline(days=1)  # query window: day 0 only
        ds.ingest(day0, instance_type="event")
        run = pipe.run_incremental(ctx, tmp_path / "feed")
        ds.ingest(day1)  # entirely outside the window
        run = pipe.run_incremental(ctx, tmp_path / "feed", state=run.state)
        assert run.blocks_new == 1
        assert run.blocks_selected == 0
        batch_result = flow_pipeline(days=1).run(make_ctx(), tmp_path / "feed")
        assert run.result.cell_values() == batch_result.cell_values()

    def test_no_new_blocks_returns_same_result(self, tmp_path):
        ctx = make_ctx()
        ds = StDataset(tmp_path / "feed")
        ds.ingest(event_batches(1)[0], instance_type="event")
        pipe = flow_pipeline(days=1)
        first = pipe.run_incremental(ctx, tmp_path / "feed")
        second = pipe.run_incremental(ctx, tmp_path / "feed", state=first.state)
        assert second.blocks_new == 0
        assert second.result.cell_values() == first.result.cell_values()

    def test_stale_state_detected_after_compaction(self, tmp_path):
        ctx = make_ctx()
        ds = StDataset(tmp_path / "feed")
        pipe = flow_pipeline()
        ds.ingest(event_batches(1)[0], partitioner=TSTRPartitioner(1, 2),
                  instance_type="event")
        run = pipe.run_incremental(ctx, tmp_path / "feed")
        ds.compact(TSTRPartitioner(1, 1))
        with pytest.raises(StaleStreamStateError):
            pipe.run_incremental(ctx, tmp_path / "feed", state=run.state)
        # A fresh state recovers and matches batch.
        fresh = pipe.run_incremental(ctx, tmp_path / "feed")
        batch_result = flow_pipeline().run(make_ctx(), tmp_path / "feed")
        assert fresh.result.cell_values() == batch_result.cell_values()

    def test_incremental_counters(self, tmp_path):
        tracer = Tracer()
        ctx = make_ctx()
        ds = StDataset(tmp_path / "feed")
        ds.ingest(event_batches(1)[0], instance_type="event")
        with installed(tracer):
            flow_pipeline().run_incremental(ctx, tmp_path / "feed")
        assert tracer.counters["incremental_runs"] == 1
        assert tracer.counters["incremental_blocks_new"] == 1


# ---------------------------------------------------------------------------
# Since-mode (stateless watermark queries)


class TestSinceMode:
    def test_since_selects_only_new_slice(self, tmp_path):
        ctx = make_ctx()
        ds = StDataset(tmp_path / "feed")
        day0, day1 = event_batches(2)
        ds.ingest(day0, instance_type="event")
        mark = ds.metadata().watermark
        ds.ingest(day1)
        pipe = flow_pipeline(days=2)
        run = pipe.run_incremental(ctx, tmp_path / "feed", since=mark)
        assert sum(run.result.cell_values()) == len(day1)

    def test_since_excludes_exact_boundary(self, tmp_path):
        """A record whose end time equals the watermark was already
        processed; strict-inequality semantics exclude it."""
        ctx = make_ctx()
        ds = StDataset(tmp_path / "feed")
        ds.ingest([Event.of_point(5.0, 5.0, 1_000.0, data="old")],
                  instance_type="event")
        mark = ds.metadata().watermark
        assert mark == 1_000.0
        ds.ingest([
            Event.of_point(5.0, 5.0, 1_000.0, data="boundary-dup"),
            Event.of_point(5.0, 5.0, 2_000.0, data="new"),
        ])
        span = Duration(0.0, DAY)
        pipe = Pipeline(
            selector=Selector(AREA, span),
            converter=Event2TsConverter(
                TimeSeriesStructure.of_interval(span, DAY)
            ),
            extractor=TsFlowExtractor(),
        )
        run = pipe.run_incremental(ctx, tmp_path / "feed", since=mark)
        assert sum(run.result.cell_values()) == 1  # only the 2000.0 event

    def test_since_past_everything_is_empty(self, tmp_path):
        ctx = make_ctx()
        ds = StDataset(tmp_path / "feed")
        ds.ingest(event_batches(1)[0], instance_type="event")
        run = flow_pipeline().run_incremental(
            ctx, tmp_path / "feed", since=ds.metadata().watermark
        )
        assert run.result is None
        assert run.blocks_selected == 0

    def test_state_and_since_are_mutually_exclusive(self, tmp_path):
        ctx = make_ctx()
        with pytest.raises(ValueError):
            flow_pipeline().run_incremental(
                ctx, tmp_path / "feed", state=StreamState(), since=0.0
            )


# ---------------------------------------------------------------------------
# Windowed extractors


class TestWindows:
    def test_tumbling_flow_counts_each_record_once(self, tmp_path, ctx):
        ds = StDataset(tmp_path / "feed")
        batches = event_batches(3, per_batch=100)
        for batch in batches:
            ds.ingest(batch, instance_type="event")
        win = WindowedFlowExtractor(origin=0.0, size=6 * 3_600.0)
        sel = Selector(AREA, Duration(0.0, 3 * DAY))
        win.update(sel.select(ctx, tmp_path / "feed"))
        assert sum(v for _, v in win.features()) == 300
        assert win.records_seen == 300

    def test_sliding_windows_overlap(self, ctx):
        events = [Event.of_point(1.0, 1.0, float(t), data=t) for t in (10, 20)]
        win = WindowedFlowExtractor(origin=0.0, size=20.0, step=10.0)
        win.update(ctx.parallelize(events, 1))
        counts = {w.start: v for w, v in win.features()}
        # t=20 is excluded from [0, 20) — half-open windows.
        assert counts == {0.0: 1, 10.0: 2, 20.0: 1}

    def test_incremental_updates_match_one_shot(self, tmp_path, ctx):
        ds = StDataset(tmp_path / "feed")
        batches = event_batches(3)
        sel = Selector(AREA, Duration(0.0, 3 * DAY))
        inc = WindowedFlowExtractor(origin=0.0, size=3_600.0)
        position = 0
        for batch in batches:
            ds.ingest(batch, instance_type="event")
            inc.update(sel.select(ctx, tmp_path / "feed", offset=position))
            position = len(ds.metadata().partitions)
        ref = WindowedFlowExtractor(origin=0.0, size=3_600.0)
        ref.update(sel.select(ctx, tmp_path / "feed"))
        assert inc.features() == ref.features()

    def test_speed_windows_span_assignment(self, ctx):
        trajs = make_trajectories(30, seed=9)
        t_lo = min(t.temporal_extent.start for t in trajs)
        win = WindowedSpeedExtractor(origin=t_lo, size=1_800.0, step=900.0)
        win.update(ctx.parallelize(trajs, 3))
        feats = win.features()
        assert feats
        assert all(isinstance(v, float) for _, v in feats)

    def test_checkpoint_restore_round_trip(self, tmp_path, ctx):
        ckpt = PipelineCheckpoint(tmp_path / "ckpt", ctx)
        win = WindowedFlowExtractor(origin=0.0, size=3_600.0)
        win.update(ctx.parallelize(event_batches(1)[0], 4))
        win.checkpoint(ckpt)
        resumed = WindowedFlowExtractor(origin=0.0, size=3_600.0)
        assert resumed.restore(ckpt)
        assert resumed.features() == win.features()
        assert resumed.records_seen == win.records_seen

    def test_restore_rejects_grid_mismatch(self, tmp_path, ctx):
        ckpt = PipelineCheckpoint(tmp_path / "ckpt", ctx)
        WindowedFlowExtractor(origin=0.0, size=3_600.0).checkpoint(ckpt)
        other = WindowedFlowExtractor(origin=0.0, size=7_200.0)
        with pytest.raises(ValueError, match="grid"):
            other.restore(ckpt)

    def test_restore_absent_returns_false(self, tmp_path, ctx):
        ckpt = PipelineCheckpoint(tmp_path / "ckpt", ctx)
        assert not WindowedFlowExtractor(0.0, 1.0).restore(ckpt)

    def test_window_state_survives_chaos_worker_loss(self, tmp_path):
        """Update under worker kills + checkpoint + restore: identical to
        a clean one-shot run."""
        plan = FaultPlan([FaultRule("worker_kill", probability=0.3)], seed=3)
        ctx = make_ctx("process", fault_plan=plan)
        ckpt = PipelineCheckpoint(tmp_path / "ckpt", ctx)
        ds = StDataset(tmp_path / "feed")
        sel = Selector(AREA, Duration(0.0, 4 * DAY))
        win = WindowedFlowExtractor(origin=0.0, size=6 * 3_600.0)
        position = 0
        for i, batch in enumerate(event_batches(4)):
            ds.ingest(batch, instance_type="event")
            win.update(sel.select(ctx, tmp_path / "feed", offset=position))
            position = len(ds.metadata().partitions)
            win.checkpoint(ckpt)
            if i == 2:  # crash-and-restart between batches
                win = WindowedFlowExtractor(origin=0.0, size=6 * 3_600.0)
                assert win.restore(ckpt)
        clean = WindowedFlowExtractor(origin=0.0, size=6 * 3_600.0)
        clean.update(sel.select(make_ctx(), tmp_path / "feed"))
        assert win.features() == clean.features()

    def test_grid_index_arithmetic(self):
        win = WindowedFlowExtractor(origin=100.0, size=50.0, step=25.0)
        # center 130 → windows starting at 100 and 125 contain it
        assert list(win._indices(130.0, 130.0)) == [0, 1]
        # exact window-start boundary belongs to the starting window only
        assert list(win._indices(125.0, 125.0)) == [0, 1]
        # exact window-end boundary is excluded (half-open)
        assert 0 not in win._indices(150.0, 150.0)


# ---------------------------------------------------------------------------
# CLI: repro info table


class TestInfoTable:
    def test_info_prints_watermark_generation_and_formats(self, tmp_path, capsys):
        from repro.cli import main as cli_main

        ds = StDataset(tmp_path / "feed")
        for batch in event_batches(2, per_batch=30):
            ds.ingest(batch, instance_type="event")
        assert cli_main(["info", str(tmp_path / "feed")]) == 0
        out = capsys.readouterr().out
        meta = ds.metadata()
        assert "generation" in out and str(meta.generation) in out
        assert "watermark" in out and f"{meta.watermark:.3f}" in out
        lines = out.splitlines()
        header = next(l for l in lines if "file" in l and "records" in l)
        assert "format" in header
        for p in meta.partitions:
            row = next(l for l in lines if p.filename in l)
            assert meta.block_format in row

    def test_info_without_watermark(self, tmp_path, capsys):
        from repro.cli import main as cli_main

        StDataset.write(tmp_path / "ds", [make_events(10)], "event")
        assert cli_main(["info", str(tmp_path / "ds")]) == 0
        assert "(none)" in capsys.readouterr().out
