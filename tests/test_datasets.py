"""Dataset generator tests: schemas, determinism, enlargement protocols."""

import pytest

from repro.datasets import (
    AIR_BBOX,
    NYC_BBOX,
    PORTO_BBOX,
    enlarge_air,
    enlarge_trajectories,
    generate_air_records,
    generate_hangzhou_case,
    generate_nyc_events,
    generate_osm_areas,
    generate_osm_pois,
    generate_porto_trajectories,
)
from repro.datasets.air import AQI_FIELDS
from repro.geometry import Point
from repro.geometry.distance import haversine_distance
from repro.instances import Event, Trajectory


class TestNyc:
    def test_count_and_schema(self):
        events = generate_nyc_events(200, seed=1)
        assert len(events) == 200
        assert all(isinstance(ev, Event) for ev in events)
        assert all(ev.value in ("pickup", "dropoff") for ev in events)

    def test_determinism(self):
        a = generate_nyc_events(50, seed=5)
        b = generate_nyc_events(50, seed=5)
        assert all(x == y for x, y in zip(a, b))

    def test_within_bbox(self):
        for ev in generate_nyc_events(200, seed=2):
            assert NYC_BBOX.min_lon <= ev.spatial.x <= NYC_BBOX.max_lon
            assert NYC_BBOX.min_lat <= ev.spatial.y <= NYC_BBOX.max_lat

    def test_spatial_skew_exists(self):
        """Hotspot mixture: a small box around the densest point holds far
        more than its uniform share."""
        events = generate_nyc_events(2000, seed=3)
        from collections import Counter

        cells = Counter(
            (round(ev.spatial.x, 2), round(ev.spatial.y, 2)) for ev in events
        )
        top = cells.most_common(1)[0][1]
        assert top > 5 * (2000 / len(cells))

    def test_night_sparser_than_rush_hour(self):
        events = generate_nyc_events(5000, seed=4)
        hours = [ev.temporal.hour_of_day() for ev in events]
        night = sum(1 for h in hours if 2 <= h < 4)
        rush = sum(1 for h in hours if 17 <= h < 19)
        assert night < rush / 3

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            generate_nyc_events(-1)


class TestPorto:
    def test_schema(self):
        trajs = generate_porto_trajectories(30, seed=1)
        assert all(isinstance(t, Trajectory) for t in trajs)
        assert all(t.data.startswith("trip-") for t in trajs)

    def test_sampling_interval(self):
        traj = generate_porto_trajectories(1, seed=2)[0]
        times = [p.t for p in traj.points()]
        assert all(b - a == 15.0 for a, b in zip(times, times[1:]))

    def test_speed_plausible(self):
        trajs = generate_porto_trajectories(50, seed=3)
        speeds = [t.average_speed_kmh() for t in trajs]
        assert 5 < sum(speeds) / len(speeds) < 80

    def test_within_bbox(self):
        for t in generate_porto_trajectories(20, seed=4):
            env = t.spatial_extent
            assert env.min_x >= PORTO_BBOX.min_lon
            assert env.max_x <= PORTO_BBOX.max_lon

    def test_enlargement_factor(self):
        base = generate_porto_trajectories(10, seed=5)
        big = enlarge_trajectories(base, factor=4, seed=5)
        assert len(big) == 40
        # Originals included verbatim.
        assert big[:10] == base

    def test_enlargement_noise_scale(self):
        """Duplicates deviate by ~sigma_s meters, not by kilometers."""
        base = generate_porto_trajectories(5, seed=6)
        big = enlarge_trajectories(base, factor=2, seed=6, sigma_s_meters=20.0)
        for orig, dup in zip(base, big[5:]):
            p0, d0 = orig.points()[0], dup.points()[0]
            deviation = haversine_distance(p0.lon, p0.lat, d0.lon, d0.lat)
            assert deviation < 150.0  # a few sigma
        assert big[5].data.endswith("-dup1")

    def test_enlargement_validates_factor(self):
        with pytest.raises(ValueError):
            enlarge_trajectories([], factor=0)


class TestAir:
    def test_schema_and_count(self):
        records = generate_air_records(n_stations=5, hours=24, seed=1)
        assert len(records) == 5 * 24
        for ev in records[:10]:
            assert set(ev.value) == set(AQI_FIELDS)
            assert all(v >= 0 for v in ev.value.values())

    def test_within_bbox(self):
        for ev in generate_air_records(5, hours=2, seed=2):
            assert AIR_BBOX.min_lon <= ev.spatial.x <= AIR_BBOX.max_lon

    def test_enlargement_station_replication(self):
        base = generate_air_records(3, hours=6, seed=3)
        big = enlarge_air(base, station_factor=4, target_interval_seconds=1800)
        station_ids = {ev.data for ev in big}
        assert len(station_ids) == 12  # 3 stations x 4 copies

    def test_enlargement_interpolation_interval(self):
        base = generate_air_records(1, hours=3, seed=4)
        big = enlarge_air(base, station_factor=1, target_interval_seconds=900)
        times = sorted(ev.temporal.start for ev in big)
        gaps = {round(b - a) for a, b in zip(times, times[1:])}
        assert gaps == {900}

    def test_interpolated_values_between_endpoints(self):
        base = generate_air_records(1, hours=2, seed=5)
        big = enlarge_air(base, station_factor=1, target_interval_seconds=1800)
        lo = min(ev.value["pm25"] for ev in base)
        hi = max(ev.value["pm25"] for ev in base)
        for ev in big:
            assert lo - 1e-9 <= ev.value["pm25"] <= hi + 1e-9


class TestOsm:
    def test_pois(self):
        pois = generate_osm_pois(100, seed=1)
        assert len(pois) == 100
        assert all(ev.temporal.is_instant for ev in pois)
        assert all("type" in ev.value for ev in pois)

    def test_areas_tile_without_gaps(self):
        """Every POI must fall inside at least one jittered area."""
        areas = generate_osm_areas(5, 4, seed=2)
        assert len(areas) == 20
        pois = generate_osm_pois(300, seed=2)
        for ev in pois:
            assert any(a.contains_point(ev.spatial.x, ev.spatial.y) for a in areas)

    def test_areas_are_irregular(self):
        areas = generate_osm_areas(4, 4, seed=3)
        sizes = {round(a.area, 6) for a in areas}
        assert len(sizes) > 1


class TestHangzhou:
    def test_statistics_match_paper_shape(self):
        case = generate_hangzhou_case(300, seed=1)
        pts = [len(t.entries) for t in case.trajectories]
        avg_points = sum(pts) / len(pts)
        assert 5 <= avg_points <= 15  # paper: 9.03
        durations = [t.duration_seconds() / 60 for t in case.trajectories]
        assert 10 <= sum(durations) / len(durations) <= 45  # paper: ~27

    def test_observations_near_cameras(self):
        case = generate_hangzhou_case(50, seed=2)
        node_pos = {}
        for seg in case.network.segments:
            node_pos[seg.from_node] = (seg.from_lon, seg.from_lat)
            node_pos[seg.to_node] = (seg.to_lon, seg.to_lat)
        camera_points = [Point(*node_pos[n]) for n in case.camera_nodes]
        for traj in case.trajectories[:10]:
            for e in traj.entries:
                nearest = min(e.spatial.distance_to(c) for c in camera_points)
                assert nearest < 0.001  # within noise of some camera

    def test_deterministic(self):
        a = generate_hangzhou_case(20, seed=3)
        b = generate_hangzhou_case(20, seed=3)
        assert len(a.trajectories) == len(b.trajectories)
        assert a.camera_nodes == b.camera_nodes
