"""Property-based tests for map matching invariants."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.instances import Trajectory
from repro.mapmatching import HmmMapMatcher, RoadNetwork

GRID = RoadNetwork.grid(116.0, 39.9, 6, 6, spacing_degrees=0.005)
MATCHER = HmmMapMatcher(GRID, sigma_meters=20, search_radius_meters=150)

lon = st.floats(min_value=115.995, max_value=116.03, allow_nan=False)
lat = st.floats(min_value=39.895, max_value=39.93, allow_nan=False)


@st.composite
def noisy_trajectories(draw):
    n = draw(st.integers(2, 8))
    t = 0.0
    points = []
    for _ in range(n):
        points.append((draw(lon), draw(lat), t))
        t += draw(st.floats(min_value=5, max_value=120, allow_nan=False))
    return Trajectory.of_points(points, data="h")


class TestMatchInvariants:
    @given(noisy_trajectories())
    @settings(max_examples=30, deadline=None)
    def test_matched_points_subset_and_ordered(self, traj):
        matched = MATCHER.match(traj)
        assert len(matched) <= len(traj.entries)
        times = [m.t for m in matched]
        assert times == sorted(times)

    @given(noisy_trajectories())
    @settings(max_examples=30, deadline=None)
    def test_snap_distance_within_radius(self, traj):
        for m in MATCHER.match(traj):
            assert m.snap_distance_meters <= MATCHER.search_radius + 1e-6

    @given(noisy_trajectories())
    @settings(max_examples=30, deadline=None)
    def test_matched_positions_lie_on_their_segment(self, traj):
        for m in MATCHER.match(traj):
            seg = GRID.segment(m.segment_id)
            _, _, dist, _ = seg.project(m.lon, m.lat)
            assert dist < 1.0  # snapped point is (numerically) on the segment

    @given(noisy_trajectories())
    @settings(max_examples=20, deadline=None)
    def test_match_to_trajectory_consistency(self, traj):
        matched_points = MATCHER.match(traj)
        matched_traj = MATCHER.match_to_trajectory(traj)
        if not matched_points:
            assert matched_traj is None
        else:
            assert len(matched_traj.entries) == len(matched_points)
            assert matched_traj.data == traj.data


class TestRouteDistanceProperties:
    def test_route_distance_at_least_straight_line(self):
        """Network distance can never beat great-circle distance."""
        from repro.geometry.distance import haversine_distance

        rng = random.Random(4)
        segs = GRID.segments
        for _ in range(30):
            a = rng.choice(segs)
            b = rng.choice(segs)
            fa, fb = rng.random(), rng.random()
            route = GRID.route_distance_meters(a.segment_id, fa, b.segment_id, fb)
            ax = a.from_lon + fa * (a.to_lon - a.from_lon)
            ay = a.from_lat + fa * (a.to_lat - a.from_lat)
            bx = b.from_lon + fb * (b.to_lon - b.from_lon)
            by = b.from_lat + fb * (b.to_lat - b.from_lat)
            straight = haversine_distance(ax, ay, bx, by)
            assert route >= straight - 1.0  # small numerical slack

    def test_shortest_path_symmetric_on_bidirectional_grid(self):
        rng = random.Random(5)
        for _ in range(20):
            u = rng.randrange(36)
            v = rng.randrange(36)
            d_uv = GRID.shortest_path_meters(u, v)
            d_vu = GRID.shortest_path_meters(v, u)
            assert d_uv == pytest.approx(d_vu, rel=1e-9)

    def test_triangle_inequality(self):
        rng = random.Random(6)
        for _ in range(15):
            u, v, w = (rng.randrange(36) for _ in range(3))
            d_uw = GRID.shortest_path_meters(u, w)
            d_uv = GRID.shortest_path_meters(u, v)
            d_vw = GRID.shortest_path_meters(v, w)
            assert d_uw <= d_uv + d_vw + 1e-6
