"""Extractor tests (Table 3)."""

import pytest

from repro.core.converters import (
    Event2TsConverter,
    Traj2RasterConverter,
    Traj2SmConverter,
    Traj2TsConverter,
)
from repro.core.extractors import (
    CustomExtractor,
    EventAnomalyExtractor,
    EventClusterExtractor,
    EventCompanionExtractor,
    RasterFlowExtractor,
    RasterSpeedExtractor,
    RasterTransitExtractor,
    SmFlowExtractor,
    SmSpeedExtractor,
    SmTransitExtractor,
    TrajCompanionExtractor,
    TrajOdExtractor,
    TrajSpeedExtractor,
    TrajStayPointExtractor,
    TrajTurningExtractor,
    TsFlowExtractor,
    TsSpeedExtractor,
    TsWindowFreqExtractor,
)
from repro.core.extractors.trajectory import extract_stay_points
from repro.core.structures import (
    RasterStructure,
    SpatialMapStructure,
    TimeSeriesStructure,
)
from repro.engine import EngineContext
from repro.geometry import Envelope
from repro.instances import Event, Trajectory
from repro.temporal import Duration
from tests.conftest import make_events, make_trajectories


@pytest.fixture
def ctx():
    return EngineContext(default_parallelism=4)


class TestEventAnomaly:
    def test_window_without_wrap(self):
        ex = EventAnomalyExtractor(9, 17)
        assert ex.matches(Event.of_point(0, 0, 10 * 3600.0))
        assert not ex.matches(Event.of_point(0, 0, 20 * 3600.0))

    def test_window_with_midnight_wrap(self):
        ex = EventAnomalyExtractor(23, 4)
        assert ex.matches(Event.of_point(0, 0, 23.5 * 3600.0))
        assert ex.matches(Event.of_point(0, 0, 2 * 3600.0))
        assert not ex.matches(Event.of_point(0, 0, 12 * 3600.0))

    def test_extract_filters(self, ctx):
        events = [Event.of_point(0, 0, h * 3600.0, data=h) for h in range(24)]
        out = EventAnomalyExtractor(23, 4).extract(ctx.parallelize(events, 2))
        assert sorted(ev.data for ev in out.collect()) == [0, 1, 2, 3, 23]

    def test_invalid_hours(self):
        with pytest.raises(ValueError):
            EventAnomalyExtractor(25, 4)


class TestEventCompanion:
    def test_close_pair_found(self, ctx):
        a = Event.of_point(0.0, 0.0, 100.0, data="a")
        b = Event.of_point(0.001, 0.0, 200.0, data="b")  # ~111 m, 100 s apart
        c = Event.of_point(1.0, 1.0, 100.0, data="c")  # far away
        out = EventCompanionExtractor(500.0, 900.0).extract(
            ctx.parallelize([a, b, c], 1)
        )
        assert out.collect() == [("'a'", "'b'")] or out.collect() == [("a", "b")]

    def test_temporal_threshold_respected(self, ctx):
        a = Event.of_point(0.0, 0.0, 0.0, data="a")
        b = Event.of_point(0.0001, 0.0, 5000.0, data="b")  # near but much later
        out = EventCompanionExtractor(500.0, 900.0).extract(ctx.parallelize([a, b], 1))
        assert out.collect() == []

    def test_bucketing_matches_brute_force(self, ctx):
        events = make_events(120, seed=41, extent=0.05, t_extent=7200.0)
        extractor = EventCompanionExtractor(800.0, 600.0)
        fast = set(extractor.extract(ctx.parallelize(events, 1)).collect())
        # Brute force over the same partition.
        from repro.geometry.distance import haversine_distance

        brute = set()
        for i, a in enumerate(events):
            for b in events[i + 1 :]:
                if abs(a.temporal.center - b.temporal.center) > 600.0:
                    continue
                d = haversine_distance(a.spatial.x, a.spatial.y, b.spatial.x, b.spatial.y)
                if d <= 800.0:
                    ka, kb = a.data, b.data
                    brute.add((ka, kb) if repr(ka) < repr(kb) else (kb, ka))
        assert fast == brute

    def test_invalid_thresholds(self):
        with pytest.raises(ValueError):
            EventCompanionExtractor(0, 10)


class TestEventCluster:
    def test_hotspot_detected(self, ctx):
        hot = [Event.of_point(1.001 + i * 1e-5, 1.001, float(i), data=i) for i in range(20)]
        cold = [Event.of_point(5.0 + i, 5.0, float(i), data=100 + i) for i in range(3)]
        out = EventClusterExtractor(0.01, min_count=10).extract(
            ctx.parallelize(hot + cold, 3)
        )
        clusters = out.collect()
        assert len(clusters) == 1
        assert clusters[0][1] == 20


class TestTrajectoryExtractors:
    def test_speed_units(self, ctx):
        traj = Trajectory.of_points([(0, 0, 0), (0, 1, 3600)], data="t")
        kmh = TrajSpeedExtractor("kmh").extract(ctx.parallelize([traj], 1)).collect()
        ms = TrajSpeedExtractor("ms").extract(ctx.parallelize([traj], 1)).collect()
        assert kmh[0][1] == pytest.approx(ms[0][1] * 3.6)

    def test_speed_invalid_unit(self):
        with pytest.raises(ValueError):
            TrajSpeedExtractor("mph")

    def test_od(self, ctx):
        traj = Trajectory.of_points([(1, 2, 0), (3, 4, 10), (5, 6, 20)], data="t")
        out = TrajOdExtractor().extract(ctx.parallelize([traj], 1)).collect()
        assert out == [("t", (1, 2), (5, 6))]

    def test_stay_point_detected(self):
        # Dwell 20 min at one spot, then move away.
        points = [(0.0, 0.0, t * 60.0) for t in range(20)] + [(1.0, 1.0, 1500.0)]
        traj = Trajectory.of_points(points, data="t")
        stays = extract_stay_points(traj, 200.0, 600.0)
        assert len(stays) == 1
        assert stays[0].lon == pytest.approx(0.0, abs=1e-9)
        assert stays[0].value >= 600.0

    def test_no_stay_point_when_moving(self):
        points = [(0.01 * i, 0.0, i * 60.0) for i in range(20)]
        traj = Trajectory.of_points(points, data="t")
        assert extract_stay_points(traj, 200.0, 600.0) == []

    def test_stay_point_extractor_rdd(self, ctx):
        points = [(0.0, 0.0, t * 60.0) for t in range(15)]
        traj = Trajectory.of_points(points, data="t")
        out = TrajStayPointExtractor().extract(ctx.parallelize([traj], 1)).collect()
        assert len(out[0][1]) == 1

    def test_turning_extractor(self, ctx):
        # Sharp 90-degree turn at the middle point.
        traj = Trajectory.of_points([(0, 0, 0), (1, 0, 10), (1, 1, 20)], data="t")
        out = TrajTurningExtractor(60.0).extract(ctx.parallelize([traj], 1)).collect()
        key, turns = out[0]
        assert len(turns) == 1
        assert turns[0][3] == pytest.approx(90.0)

    def test_turning_straight_line_none(self, ctx):
        traj = Trajectory.of_points([(0, 0, 0), (1, 0, 10), (2, 0, 20)], data="t")
        out = TrajTurningExtractor(30.0).extract(ctx.parallelize([traj], 1)).collect()
        assert out[0][1] == []

    def test_traj_companion(self, ctx):
        a = Trajectory.of_points([(0, 0, 0), (0.0005, 0, 60)], data="a")
        b = Trajectory.of_points([(0.0001, 0, 30), (0.0006, 0, 90)], data="b")
        c = Trajectory.of_points([(2, 2, 0), (2.0005, 2, 60)], data="c")
        out = TrajCompanionExtractor(500.0, 300.0).extract(
            ctx.parallelize([a, b, c], 1)
        )
        pairs = out.collect()
        assert len(pairs) == 1
        assert set(pairs[0]) == {"a", "b"}


class TestCollectiveExtractors:
    def _converted_ts(self, ctx, n_events=200):
        events = make_events(n_events, seed=51)
        structure = TimeSeriesStructure.regular(Duration(0, 86_400), 12)
        return Event2TsConverter(structure).convert(ctx.parallelize(events, 4))

    def test_ts_flow_total(self, ctx):
        flow = TsFlowExtractor().extract(self._converted_ts(ctx))
        assert sum(flow.cell_values()) >= 200

    def test_ts_window_freq_moving_sum(self, ctx):
        windowed = TsWindowFreqExtractor(window_slots=12).extract(
            self._converted_ts(ctx)
        )
        values = windowed.cell_values()
        # Last slot's 12-wide window covers everything allocated so far.
        flow = TsFlowExtractor().extract(self._converted_ts(ctx)).cell_values()
        assert values[-1] == sum(flow)

    def test_ts_speed(self, ctx):
        trajs = make_trajectories(30, seed=52)
        extent = Duration(0, 90_000)
        converted = Traj2TsConverter(
            TimeSeriesStructure.regular(extent, 6)
        ).convert(ctx.parallelize(trajs, 3))
        speeds = TsSpeedExtractor("kmh").extract(converted).cell_values()
        assert any(v is not None and v > 0 for v in speeds)

    def test_sm_flow_and_speed(self, ctx):
        trajs = make_trajectories(25, seed=53)
        structure = SpatialMapStructure.regular(Envelope(0, 0, 10, 10), 4, 4)
        converted = Traj2SmConverter(structure).convert(ctx.parallelize(trajs, 2))
        flows = SmFlowExtractor().extract(converted).cell_values()
        assert sum(flows) >= 25
        speeds = SmSpeedExtractor().extract(converted).cell_values()
        assert sum(1 for s in speeds if s is not None) == sum(1 for f in flows if f > 0)

    def test_sm_transit(self, ctx):
        # One trajectory marching straight across three cells.
        traj = Trajectory.of_points(
            [(0.5, 0.5, 0), (1.5, 0.5, 10), (2.5, 0.5, 20)], data="t"
        )
        structure = SpatialMapStructure.regular(Envelope(0, 0, 3, 1), 3, 1)
        converted = Traj2SmConverter(structure).convert(ctx.parallelize([traj], 1))
        transits = dict(SmTransitExtractor().extract(converted).collect())
        assert transits[(0, 1)] == 1
        assert transits[(1, 2)] == 1

    def test_raster_flow_speed_transit(self, ctx):
        trajs = make_trajectories(20, seed=54)
        structure = RasterStructure.regular(
            Envelope(0, 0, 10, 10), Duration(0, 90_000), 3, 3, 4
        )
        converted = Traj2RasterConverter(structure).convert(
            ctx.parallelize(trajs, 2)
        ).persist()
        flows = RasterFlowExtractor().extract(converted).cell_values()
        assert sum(flows) >= 20
        speed_cells = RasterSpeedExtractor().extract(converted).cell_values()
        assert all(isinstance(v, tuple) and len(v) == 2 for v in speed_cells)
        total_vehicles = sum(v[0] for v in speed_cells)
        assert total_vehicles == sum(flows)
        in_out = RasterTransitExtractor().extract(converted).cell_values()
        assert all(i >= 0 and o >= 0 for i, o in in_out)

    def test_raster_transit_directionality(self, ctx):
        # Trajectory starts inside cell 0 and ends inside the last cell:
        # out-flow from the first, in-flow to the last.
        traj = Trajectory.of_points([(0.5, 0.5, 0), (2.5, 0.5, 100)], data="t")
        structure = RasterStructure.regular(Envelope(0, 0, 3, 1), Duration(0, 200), 3, 1, 1)
        converted = Traj2RasterConverter(structure).convert(ctx.parallelize([traj], 1))
        in_out = RasterTransitExtractor().extract(converted).cell_values()
        assert in_out[0] == (0, 1)   # left the first cell
        assert in_out[2] == (1, 0)   # entered the last cell

    def test_custom_extractor(self, ctx):
        rdd = ctx.parallelize(range(10), 2)
        ex = CustomExtractor(lambda r: r.map(lambda x: x * 2))
        assert ex.extract(rdd).collect() == [x * 2 for x in range(10)]
