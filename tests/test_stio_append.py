"""The periodic-append workflow (Section 4.1 discussion point 2)."""

import pytest

from repro.core import Selector
from repro.engine import EngineContext
from repro.geometry import Envelope
from repro.partitioners import TSTRPartitioner
from repro.stio import save_dataset
from repro.temporal import Duration
from tests.conftest import make_events


@pytest.fixture
def ctx():
    return EngineContext(default_parallelism=4)


class TestAppend:
    def test_append_grows_metadata(self, ctx, tmp_path):
        batch1 = make_events(200, seed=81)
        ds = save_dataset(tmp_path / "d", batch1, "event", ctx=ctx)
        n_before = len(ds.metadata().partitions)

        batch2 = make_events(150, seed=82)
        ds.append_rdd(ctx.parallelize(batch2, 3))
        meta = ds.metadata()
        assert meta.total_records == 350
        assert len(meta.partitions) == n_before + 3

    def test_selection_spans_both_batches(self, ctx, tmp_path):
        batch1 = make_events(300, seed=83)
        batch2 = make_events(300, seed=84)
        ds = save_dataset(
            tmp_path / "d", batch1, "event", partitioner=TSTRPartitioner(2, 2), ctx=ctx
        )
        ds.append_rdd(ctx.parallelize(batch2, 4), partitioner=TSTRPartitioner(2, 2))

        spatial = Envelope(2, 2, 8, 8)
        temporal = Duration(5_000, 60_000)
        out = Selector(spatial, temporal).select(ctx, tmp_path / "d")
        expected = sorted(
            repr(ev.data)
            for ev in batch1 + batch2
            if ev.intersects(spatial, temporal)
        )
        assert sorted(repr(ev.data) for ev in out.collect()) == expected

    def test_appended_partitions_prunable(self, ctx, tmp_path):
        """Metadata of the appended batch participates in pruning."""
        # Batch 1 in one spatial corner, batch 2 far away.
        from repro.instances import Event

        batch1 = [Event.of_point(1.0, 1.0, float(i), data=f"a{i}") for i in range(50)]
        batch2 = [Event.of_point(100.0, 100.0, float(i), data=f"b{i}") for i in range(50)]
        ds = save_dataset(tmp_path / "d", batch1, "event", num_partitions=2, ctx=ctx)
        ds.append_rdd(ctx.parallelize(batch2, 2))

        selector = Selector(Envelope(99, 99, 101, 101), Duration(0, 1e6))
        out = selector.select(ctx, tmp_path / "d")
        assert out.count() == 50
        stats = selector.last_load_stats
        # Only the appended partitions should have been read.
        assert set(stats.files) == {"part-00002.pkl", "part-00003.pkl"}
        assert stats.records_loaded == 50

    def test_append_block_numbering_continues(self, ctx, tmp_path):
        ds = save_dataset(tmp_path / "d", make_events(40, seed=85), "event", num_partitions=2, ctx=ctx)
        ds.append(
            [[ev for ev in make_events(10, seed=86)]]
        )
        files = sorted(p.name for p in (tmp_path / "d").glob("part-*.pkl"))
        assert files == ["part-00000.pkl", "part-00001.pkl", "part-00002.pkl"]

    def test_append_empty_partition(self, ctx, tmp_path):
        ds = save_dataset(tmp_path / "d", make_events(20, seed=87), "event", num_partitions=1, ctx=ctx)
        ds.append([[]])
        meta = ds.metadata()
        assert meta.total_records == 20
        assert len(meta.partitions) == 2
