"""Property-based tests on the geometry substrate."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import Envelope, LineString, Point, Polygon

coord = st.floats(min_value=-100, max_value=100, allow_nan=False, allow_infinity=False)


@st.composite
def envelopes(draw):
    x1, x2 = sorted((draw(coord), draw(coord)))
    y1, y2 = sorted((draw(coord), draw(coord)))
    return Envelope(x1, y1, x2, y2)


@st.composite
def points(draw):
    return Point(draw(coord), draw(coord))


@st.composite
def triangles(draw):
    pts = [(draw(coord), draw(coord)) for _ in range(3)]
    # Reject degenerate (collinear) triangles.
    (x1, y1), (x2, y2), (x3, y3) = pts
    area2 = abs((x2 - x1) * (y3 - y1) - (y2 - y1) * (x3 - x1))
    if area2 < 1e-6:
        pts[2] = (pts[2][0] + 1.0, pts[2][1] + 2.0)
    return Polygon(pts)


class TestEnvelopeProperties:
    @given(envelopes(), envelopes())
    def test_intersects_symmetric(self, a, b):
        assert a.intersects_envelope(b) == b.intersects_envelope(a)

    @given(envelopes(), envelopes())
    def test_merge_contains_both(self, a, b):
        merged = a.merge(b)
        assert merged.contains_envelope(a)
        assert merged.contains_envelope(b)

    @given(envelopes(), envelopes())
    def test_intersection_inside_both(self, a, b):
        overlap = a.intersection(b)
        if overlap is None:
            assert not a.intersects_envelope(b)
        else:
            assert a.contains_envelope(overlap)
            assert b.contains_envelope(overlap)

    @given(envelopes())
    def test_self_intersection_is_identity(self, env):
        assert env.intersection(env) == env

    @given(envelopes(), points())
    def test_contains_implies_intersects(self, env, p):
        if env.contains_point(p.x, p.y):
            assert env.intersects(p)

    @given(envelopes(), st.integers(1, 5), st.integers(1, 5))
    def test_split_covers_and_preserves_area(self, env, nx, ny):
        cells = env.split(nx, ny)
        assert len(cells) == nx * ny
        merged = Envelope.merge_all(cells)
        assert abs(merged.min_x - env.min_x) < 1e-9
        assert abs(merged.max_x - env.max_x) < 1e-9

    @given(envelopes(), envelopes())
    def test_distance_zero_iff_intersects(self, a, b):
        if a.intersects_envelope(b):
            assert a.distance_to(b) == 0.0
        else:
            assert a.distance_to(b) > 0.0


class TestPointProperties:
    @given(points(), points())
    def test_distance_symmetric(self, a, b):
        assert a.distance_to(b) == b.distance_to(a)

    @given(points())
    def test_distance_to_self_is_zero(self, p):
        assert p.distance_to(p) == 0.0

    @given(points(), points(), points())
    def test_triangle_inequality(self, a, b, c):
        assert a.distance_to(c) <= a.distance_to(b) + b.distance_to(c) + 1e-6


class TestPolygonProperties:
    @given(triangles())
    def test_centroid_inside_envelope(self, poly):
        c = poly.centroid()
        assert poly.envelope.expanded(1e-6).contains_point(c.x, c.y)

    @given(triangles(), points())
    def test_contains_implies_envelope_contains(self, poly, p):
        if poly.contains_point(p.x, p.y):
            assert poly.envelope.expanded(1e-9).contains_point(p.x, p.y)

    @given(triangles())
    def test_vertices_on_boundary_count_inside(self, poly):
        for x, y in poly.ring:
            assert poly.contains_point(x, y)

    @given(triangles(), envelopes())
    @settings(max_examples=50)
    def test_envelope_intersection_consistent_with_mbr(self, poly, env):
        # Exact intersection implies MBR intersection (never the reverse).
        if poly.intersects(env):
            assert poly.envelope.intersects_envelope(env)


class TestLineStringProperties:
    @given(st.lists(st.tuples(coord, coord), min_size=2, max_size=6))
    def test_length_nonnegative_and_envelope_covers(self, coords):
        ls = LineString(coords)
        assert ls.length >= 0.0
        for x, y in coords:
            assert ls.envelope.contains_point(x, y)

    @given(st.lists(st.tuples(coord, coord), min_size=2, max_size=5), points())
    def test_vertex_distance_bounds_line_distance(self, coords, p):
        ls = LineString(coords)
        min_vertex = min(Point(x, y).distance_to(p) for x, y in coords)
        assert ls.distance_to(p) <= min_vertex + 1e-9
