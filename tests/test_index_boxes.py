"""STBox unit tests."""

import pickle

import pytest

from repro.geometry import Envelope
from repro.index import STBox
from repro.temporal import Duration


class TestConstruction:
    def test_basic(self):
        box = STBox((0, 1), (2, 3))
        assert box.ndim == 2
        assert box.mins == (0, 1)
        assert box.maxs == (2, 3)

    def test_mismatched_dims_rejected(self):
        with pytest.raises(ValueError):
            STBox((0,), (1, 2))

    def test_inverted_rejected(self):
        with pytest.raises(ValueError):
            STBox((2,), (1,))

    def test_zero_dims_rejected(self):
        with pytest.raises(ValueError):
            STBox((), ())

    def test_from_envelope(self):
        box = STBox.from_envelope(Envelope(0, 1, 2, 3))
        assert box == STBox((0, 1), (2, 3))

    def test_from_duration(self):
        assert STBox.from_duration(Duration(5, 9)) == STBox((5,), (9,))

    def test_from_st(self):
        box = STBox.from_st(Envelope(0, 1, 2, 3), Duration(4, 5))
        assert box == STBox((0, 1, 4), (2, 3, 5))

    def test_roundtrip_to_envelope_duration(self):
        box = STBox.from_st(Envelope(0, 1, 2, 3), Duration(4, 5))
        assert box.to_envelope() == Envelope(0, 1, 2, 3)
        assert box.to_duration() == Duration(4, 5)

    def test_to_envelope_needs_two_dims(self):
        with pytest.raises(ValueError):
            STBox((0,), (1,)).to_envelope()


class TestGeometry:
    def test_center(self):
        assert STBox((0, 0), (4, 2)).center() == (2, 1)

    def test_volume(self):
        assert STBox((0, 0, 0), (2, 3, 4)).volume() == 24.0

    def test_intersects(self):
        a = STBox((0, 0, 0), (2, 2, 2))
        assert a.intersects(STBox((1, 1, 1), (3, 3, 3)))
        assert a.intersects(STBox((2, 0, 0), (3, 1, 1)))  # face touch
        assert not a.intersects(STBox((3, 3, 3), (4, 4, 4)))

    def test_intersects_dim_mismatch(self):
        with pytest.raises(ValueError):
            STBox((0,), (1,)).intersects(STBox((0, 0), (1, 1)))

    def test_contains(self):
        outer = STBox((0, 0), (4, 4))
        assert outer.contains(STBox((1, 1), (2, 2)))
        assert not outer.contains(STBox((3, 3), (5, 5)))

    def test_merge(self):
        merged = STBox((0, 0), (1, 1)).merge(STBox((2, -1), (3, 0)))
        assert merged == STBox((0, -1), (3, 1))

    def test_merge_all(self):
        boxes = [STBox((i,), (i + 1,)) for i in range(5)]
        assert STBox.merge_all(boxes) == STBox((0,), (5,))

    def test_merge_all_empty_rejected(self):
        with pytest.raises(ValueError):
            STBox.merge_all([])

    def test_hash_and_pickle(self):
        box = STBox((0.5, 1.5), (2.5, 3.5))
        assert hash(box) == hash(STBox((0.5, 1.5), (2.5, 3.5)))
        assert pickle.loads(pickle.dumps(box)) == box
