"""Cluster cost model tests: monotonicity and comparative properties."""

import pytest

from repro.engine import EngineContext
from repro.engine.costmodel import ClusterProfile, CostEstimate, estimate_cost
from repro.engine.metrics import JobMetrics, TaskMetrics
from repro.stio.dataset import LoadStats


def metrics_with(tasks: list[int], shuffled: int = 0, broadcast: int = 0) -> JobMetrics:
    m = JobMetrics()
    for i, records in enumerate(tasks):
        m.record_task(TaskMetrics(partition=i, records_out=records))
    m.shuffle_records = shuffled
    m.broadcast_records = broadcast
    return m


class TestProfile:
    def test_validation(self):
        with pytest.raises(ValueError):
            ClusterProfile(n_workers=0)

    def test_breakdown_sums_to_total(self):
        est = CostEstimate(1.0, 2.0, 3.0, 4.0)
        assert est.total_seconds == 10.0
        assert est.breakdown()["total"] == 10.0


class TestEstimates:
    def test_more_shuffle_costs_more(self):
        a = estimate_cost(metrics_with([100] * 8, shuffled=100))
        b = estimate_cost(metrics_with([100] * 8, shuffled=10_000))
        assert b.shuffle_seconds > a.shuffle_seconds
        assert b.total_seconds > a.total_seconds

    def test_skew_costs_more_than_balance(self):
        """Same record total, skewed layout gates the stage — the CV story."""
        balanced = estimate_cost(metrics_with([100] * 8))
        skewed = estimate_cost(metrics_with([730, 10, 10, 10, 10, 10, 10, 10]))
        assert skewed.compute_seconds > balanced.compute_seconds

    def test_broadcast_scales_with_workers(self):
        small = estimate_cost(
            metrics_with([10], broadcast=100), ClusterProfile(n_workers=2)
        )
        big = estimate_cost(
            metrics_with([10], broadcast=100), ClusterProfile(n_workers=16)
        )
        assert big.broadcast_seconds > small.broadcast_seconds

    def test_io_from_load_stats(self):
        stats = LoadStats(partitions_total=20, partitions_read=10, records_loaded=5_000)
        with_io = estimate_cost(metrics_with([10]), load_stats=stats)
        without = estimate_cost(metrics_with([10]))
        assert with_io.io_seconds > 0
        assert without.io_seconds == 0

    def test_pruned_load_cheaper(self):
        pruned = LoadStats(partitions_total=20, partitions_read=2, records_loaded=500)
        full = LoadStats(partitions_total=20, partitions_read=20, records_loaded=20_000)
        a = estimate_cost(metrics_with([10]), load_stats=pruned)
        b = estimate_cost(metrics_with([10]), load_stats=full)
        assert a.io_seconds < b.io_seconds

    def test_empty_metrics(self):
        est = estimate_cost(JobMetrics())
        assert est.total_seconds == 0.0


class TestEndToEndComparative:
    def test_broadcast_plan_beats_shuffle_plan_under_model(self):
        """The ablation conclusion expressed in estimated cluster time:
        broadcasting a small structure beats shuffling all records."""
        from repro.core.converters import Event2SmConverter
        from repro.core.structures import SpatialMapStructure
        from repro.geometry import Envelope
        from tests.conftest import make_events

        events = make_events(2_000, seed=301)
        structure = SpatialMapStructure.regular(Envelope(0, 0, 10, 10), 8, 8)

        ctx_a = EngineContext(4)
        Event2SmConverter(structure).convert(ctx_a.parallelize(events, 4)).count()

        ctx_b = EngineContext(4)
        rdd = ctx_b.parallelize(events, 4)
        (
            rdd.flat_map(
                lambda ev: [
                    (c, 1)
                    for c in structure.candidate_cells(
                        ev.spatial_extent, ev.temporal_extent
                    )
                ]
            )
            .group_by_key(4)
            .collect()
        )

        cost_broadcast = estimate_cost(ctx_a.metrics)
        cost_shuffle = estimate_cost(ctx_b.metrics)
        assert cost_broadcast.shuffle_seconds == 0.0
        assert cost_shuffle.shuffle_seconds > 0.0
