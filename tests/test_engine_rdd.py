"""Engine RDD semantics vs plain Python list operations."""

import pytest

from repro.engine import Accumulator, EngineContext


@pytest.fixture
def ctx():
    return EngineContext(default_parallelism=4)


@pytest.fixture
def numbers(ctx):
    return ctx.parallelize(range(100), 8)


class TestBasics:
    def test_collect_preserves_order(self, numbers):
        assert numbers.collect() == list(range(100))

    def test_count(self, numbers):
        assert numbers.count() == 100

    def test_parallelize_respects_partition_count(self, ctx):
        rdd = ctx.parallelize(range(10), 3)
        assert rdd.num_partitions == 3
        assert sum(rdd.partition_sizes()) == 10

    def test_parallelize_empty(self, ctx):
        rdd = ctx.parallelize([])
        assert rdd.collect() == []
        assert rdd.is_empty()

    def test_from_partitions_layout_preserved(self, ctx):
        rdd = ctx.from_partitions([[1, 2], [3], []])
        assert rdd.partition_sizes() == [2, 1, 0]

    def test_first_and_take(self, numbers):
        assert numbers.first() == 0
        assert numbers.take(5) == [0, 1, 2, 3, 4]
        assert numbers.take(1000) == list(range(100))

    def test_first_on_empty_raises(self, ctx):
        with pytest.raises(ValueError):
            ctx.parallelize([]).first()


class TestNarrowTransformations:
    def test_map_filter_flatmap(self, numbers):
        result = (
            numbers.map(lambda x: x * 2)
            .filter(lambda x: x % 3 == 0)
            .flat_map(lambda x: [x, -x])
            .collect()
        )
        expected = []
        for x in (y * 2 for y in range(100)):
            if x % 3 == 0:
                expected.extend([x, -x])
        assert result == expected

    def test_map_partitions(self, numbers):
        sums = numbers.map_partitions(lambda p: [sum(p)]).collect()
        assert sum(sums) == sum(range(100))
        assert len(sums) == 8

    def test_map_partitions_with_index(self, ctx):
        rdd = ctx.from_partitions([[10], [20], [30]])
        tagged = rdd.map_partitions_with_index(lambda i, p: [(i, x) for x in p])
        assert tagged.collect() == [(0, 10), (1, 20), (2, 30)]

    def test_glom(self, ctx):
        rdd = ctx.from_partitions([[1, 2], [3]])
        assert rdd.glom().collect() == [[1, 2], [3]]

    def test_key_by_values_keys(self, ctx):
        rdd = ctx.parallelize(["aa", "b"], 1).key_by(len)
        assert rdd.keys().collect() == [2, 1]
        assert rdd.values().collect() == ["aa", "b"]

    def test_map_values_flat_map_values(self, ctx):
        pairs = ctx.parallelize([(1, 2), (3, 4)], 2)
        assert pairs.map_values(lambda v: v * 10).collect() == [(1, 20), (3, 40)]
        assert pairs.flat_map_values(lambda v: [v, v]).collect() == [
            (1, 2), (1, 2), (3, 4), (3, 4),
        ]

    def test_sample_deterministic(self, numbers):
        a = numbers.sample(0.3, seed=5).collect()
        b = numbers.sample(0.3, seed=5).collect()
        assert a == b
        assert 0 < len(a) < 100

    def test_sample_bounds(self, numbers):
        assert numbers.sample(0.0).collect() == []
        with pytest.raises(ValueError):
            numbers.sample(1.5)

    def test_zip_with_index(self, ctx):
        rdd = ctx.from_partitions([[5, 6], [7], [8, 9]])
        assert rdd.zip_with_index().collect() == [
            (5, 0), (6, 1), (7, 2), (8, 3), (9, 4),
        ]

    def test_union(self, ctx):
        a = ctx.parallelize([1, 2], 2)
        b = ctx.parallelize([3], 1)
        u = a.union(b)
        assert u.collect() == [1, 2, 3]
        assert u.num_partitions == 3

    def test_union_cross_context_rejected(self, ctx):
        other = EngineContext()
        with pytest.raises(ValueError):
            ctx.parallelize([1]).union(other.parallelize([2]))

    def test_cartesian(self, ctx):
        a = ctx.parallelize([1, 2], 2)
        b = ctx.parallelize(["x", "y"], 1)
        assert sorted(a.cartesian(b).collect()) == [
            (1, "x"), (1, "y"), (2, "x"), (2, "y"),
        ]

    def test_zip_partitions(self, ctx):
        a = ctx.from_partitions([[1, 2], [3]])
        b = ctx.from_partitions([[10, 20], [30]])
        z = a.zip_partitions(b, lambda p, q: [x + y for x, y in zip(p, q)])
        assert z.collect() == [11, 22, 33]

    def test_zip_partitions_mismatch_rejected(self, ctx):
        a = ctx.from_partitions([[1], [2]])
        b = ctx.from_partitions([[1]])
        with pytest.raises(ValueError):
            a.zip_partitions(b, lambda p, q: [])

    def test_coalesce(self, numbers):
        small = numbers.coalesce(3)
        assert small.num_partitions == 3
        assert small.collect() == list(range(100))

    def test_coalesce_no_op_when_growing(self, numbers):
        assert numbers.coalesce(100) is numbers


class TestWideTransformations:
    def test_repartition_balances(self, ctx):
        rdd = ctx.from_partitions([[*range(50)], [], [], []])
        sizes = rdd.repartition(5).partition_sizes()
        assert sum(sizes) == 50
        assert max(sizes) - min(sizes) <= 1

    def test_shuffle_by_single_target(self, ctx):
        rdd = ctx.parallelize(range(20), 4)
        out = rdd.shuffle_by(2, lambda x: x % 2)
        parts = [sorted(p) for p in out._collect_partitions()]
        assert parts[0] == [x for x in range(20) if x % 2 == 0]
        assert parts[1] == [x for x in range(20) if x % 2 == 1]

    def test_shuffle_by_duplication(self, ctx):
        rdd = ctx.parallelize(range(10), 2)
        out = rdd.shuffle_by(3, lambda x: [0, 2])
        assert out.count() == 20

    def test_group_by_key(self, ctx):
        pairs = ctx.parallelize([(i % 3, i) for i in range(30)], 4)
        grouped = dict(pairs.group_by_key().collect())
        assert sorted(grouped[0]) == [x for x in range(30) if x % 3 == 0]

    def test_reduce_by_key(self, ctx):
        pairs = ctx.parallelize([(i % 5, 1) for i in range(100)], 8)
        assert pairs.reduce_by_key(lambda a, b: a + b).collect_as_map() == {
            k: 20 for k in range(5)
        }

    def test_reduce_equals_group_then_reduce(self, ctx):
        pairs = ctx.parallelize([(i % 7, i) for i in range(200)], 8)
        a = pairs.reduce_by_key(lambda x, y: x + y).collect_as_map()
        b = {
            k: sum(v) for k, v in pairs.group_by_key().collect()
        }
        assert a == b

    def test_aggregate_by_key(self, ctx):
        pairs = ctx.parallelize([(i % 2, i) for i in range(10)], 3)
        result = pairs.aggregate_by_key(
            [], lambda acc, v: acc + [v], lambda a, b: a + b
        ).collect_as_map()
        assert sorted(result[0]) == [0, 2, 4, 6, 8]

    def test_fold_by_key(self, ctx):
        pairs = ctx.parallelize([(0, 2), (0, 3), (1, 4)], 2)
        assert pairs.fold_by_key(1, lambda a, b: a * b).collect_as_map() == {0: 6, 1: 4}

    def test_distinct(self, ctx):
        rdd = ctx.parallelize([1, 2, 2, 3, 3, 3], 3)
        assert sorted(rdd.distinct().collect()) == [1, 2, 3]

    def test_distinct_unhashable_elements(self, ctx):
        # dicts and lists have no __hash__; distinct falls back to a
        # pickled-bytes identity instead of raising TypeError.
        rdd = ctx.parallelize([{"a": 1}, {"a": 1}, {"b": 2}, [1, 2], [1, 2]], 3)
        out = rdd.distinct().collect()
        assert len(out) == 3
        assert {"a": 1} in out and {"b": 2} in out and [1, 2] in out

    def test_distinct_mixed_hashable_and_not(self, ctx):
        rdd = ctx.parallelize([1, 1, {"x": 0}, {"x": 0}, (2, 3), (2, 3)], 2)
        out = rdd.distinct().collect()
        assert len(out) == 3

    def test_distinct_unhashable_across_partitions(self, ctx):
        # Duplicates that live in different partitions must still collapse,
        # so the fallback key has to shuffle consistently.
        rdd = ctx.parallelize([{"k": i % 2} for i in range(8)], 4)
        assert len(rdd.distinct().collect()) == 2

    def test_distinct_by_custom_key(self, ctx):
        rdd = ctx.parallelize(["apple", "avocado", "banana", "cherry"], 2)
        out = sorted(rdd.distinct_by(lambda s: s[0]).collect())
        # One representative survives per first letter.
        assert len(out) == 3
        assert out[1] == "banana" and out[2] == "cherry"

    def test_group_by(self, ctx):
        rdd = ctx.parallelize(range(10), 2)
        grouped = dict(rdd.group_by(lambda x: x % 2).collect())
        assert sorted(grouped[1]) == [1, 3, 5, 7, 9]

    def test_join(self, ctx):
        a = ctx.parallelize([(1, "a"), (2, "b"), (3, "c")], 2)
        b = ctx.parallelize([(1, "x"), (1, "y"), (3, "z")], 2)
        joined = sorted(a.join(b).collect())
        assert joined == [(1, ("a", "x")), (1, ("a", "y")), (3, ("c", "z"))]

    def test_left_outer_join(self, ctx):
        a = ctx.parallelize([(1, "a"), (2, "b")], 1)
        b = ctx.parallelize([(1, "x")], 1)
        joined = sorted(a.left_outer_join(b).collect())
        assert joined == [(1, ("a", "x")), (2, ("b", None))]

    def test_cogroup(self, ctx):
        a = ctx.parallelize([(1, "a")], 1)
        b = ctx.parallelize([(1, "x"), (2, "y")], 1)
        grouped = dict(a.cogroup(b).collect())
        assert grouped[1] == (["a"], ["x"])
        assert grouped[2] == ([], ["y"])

    def test_sort_by(self, ctx):
        import random

        data = list(range(200))
        random.Random(3).shuffle(data)
        rdd = ctx.parallelize(data, 8)
        assert rdd.sort_by(lambda x: x).collect() == sorted(data)
        assert rdd.sort_by(lambda x: x, ascending=False).collect() == sorted(
            data, reverse=True
        )

    def test_sort_by_key(self, ctx):
        pairs = ctx.parallelize([(3, "c"), (1, "a"), (2, "b")], 2)
        assert pairs.sort_by_key().collect() == [(1, "a"), (2, "b"), (3, "c")]

    def test_sort_single_partition(self, ctx):
        rdd = ctx.parallelize([5, 1, 3], 2)
        assert rdd.sort_by(lambda x: x, num_partitions=1).collect() == [1, 3, 5]


class TestActions:
    def test_reduce(self, numbers):
        assert numbers.reduce(lambda a, b: a + b) == sum(range(100))

    def test_reduce_empty_raises(self, ctx):
        with pytest.raises(ValueError):
            ctx.parallelize([]).reduce(lambda a, b: a + b)

    def test_fold(self, ctx):
        assert ctx.parallelize([1, 2, 3], 2).fold(10, lambda a, b: a + b) == 16

    def test_aggregate(self, ctx):
        rdd = ctx.parallelize(range(10), 3)
        total, count = rdd.aggregate(
            (0, 0),
            lambda acc, x: (acc[0] + x, acc[1] + 1),
            lambda a, b: (a[0] + b[0], a[1] + b[1]),
        )
        assert (total, count) == (45, 10)

    def test_sum_mean_max_min(self, numbers):
        assert numbers.sum() == sum(range(100))
        assert numbers.mean() == pytest.approx(49.5)
        assert numbers.max() == 99
        assert numbers.min() == 0
        assert numbers.max(key=lambda x: -x) == 0

    def test_mean_empty_raises(self, ctx):
        with pytest.raises(ValueError):
            ctx.parallelize([]).mean()

    def test_count_by_value(self, ctx):
        rdd = ctx.parallelize(["a", "b", "a"], 2)
        assert rdd.count_by_value() == {"a": 2, "b": 1}

    def test_count_by_key(self, ctx):
        rdd = ctx.parallelize([(1, "x"), (1, "y"), (2, "z")], 2)
        assert rdd.count_by_key() == {1: 2, 2: 1}

    def test_foreach(self, numbers):
        seen = []
        numbers.foreach(seen.append)
        assert seen == list(range(100))


class TestCaching:
    def test_persist_prevents_recompute(self, ctx):
        calls = Accumulator([], lambda a, b: a + b)

        def track(x):
            calls.add([x])
            return x

        rdd = ctx.parallelize(range(10), 2).map(track).persist()
        rdd.count()
        rdd.count()
        assert len(calls.value) == 10  # second action served from cache

    def test_unpersist_recomputes(self, ctx):
        calls = Accumulator([], lambda a, b: a + b)
        rdd = ctx.parallelize(range(5), 1).map(lambda x: calls.add([x]) or x).persist()
        rdd.count()
        rdd.unpersist()
        rdd.count()
        assert len(calls.value) == 10

    def test_cache_alias(self, ctx):
        rdd = ctx.parallelize([1]).cache()
        assert rdd.is_cached
