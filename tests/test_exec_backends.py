"""The execution-backend subsystem: sequential / thread / process.

The contract under test: every backend produces byte-identical results
and identical counted-work metrics for the same pipeline, honors the
retry semantics under injected faults, and the process backend adds
straggler re-execution, per-task timeouts, and per-worker accounting on
top without changing any of that.

Everything shipped to process workers here is module-level, so the suite
also passes without cloudpickle installed.

Byte-identity is asserted per element: pickling a whole collected list is
sensitive to *cross*-element object sharing, which in-driver evaluation
preserves but any process round-trip (Spark's included) breaks; per-element
bytes are the semantically meaningful comparison.
"""

from __future__ import annotations

import pickle
import time

import pytest

from repro.core import Selector
from repro.datasets import generate_nyc_events
from repro.engine import (
    BACKENDS,
    EngineContext,
    ProcessBackend,
    SequentialBackend,
    TaskFailure,
    TaskSerializationError,
    TaskTimeout,
    ThreadBackend,
    resolve_backend,
)
from repro.engine.costmodel import suggest_task_chunks
from repro.geometry import Envelope
from repro.temporal import Duration

ALL_BACKENDS = ["sequential", "thread", "process"]

#: Keep process pools tiny: the suite must stay fast on a 1-core box.
WORKERS = 2


def make_ctx(backend: str, **backend_options) -> EngineContext:
    options = dict(backend_options)
    if backend == "process":
        options.setdefault("warmup", False)
    return EngineContext(
        default_parallelism=WORKERS,
        backend=backend,
        backend_options=options or None,
    )


# -- module-level pipeline pieces (picklable without cloudpickle) ---------------


def double(x: int) -> int:
    return 2 * x


def is_even(x: int) -> bool:
    return x % 2 == 0


def mod_key(x: int) -> tuple[int, int]:
    return (x % 7, x)


def add(a: int, b: int) -> int:
    return a + b


def element_bytes(result: list) -> list[bytes]:
    return [pickle.dumps(x) for x in result]


def run_pipeline(ctx: EngineContext):
    """map → filter → key → reduce_by_key: narrow chains plus one shuffle."""
    return (
        ctx.parallelize(range(400), 8)
        .map(double)
        .filter(is_even)
        .map(mod_key)
        .reduce_by_key(add)
        .collect()
    )


# -- module-level failure injectors (pure in (partition, attempt)) --------------


def fail_p1_first_attempt(partition: int, attempt: int) -> None:
    if partition == 1 and attempt == 1:
        raise RuntimeError("transient fault")


def fail_p0_slowly_once(partition: int, attempt: int) -> None:
    if partition == 0 and attempt == 1:
        time.sleep(0.005)
        raise RuntimeError("slow transient fault")


def fail_p0_always(partition: int, attempt: int) -> None:
    if partition == 0:
        raise RuntimeError("dead executor")


# -- marker-file tasks for straggler/timeout behavior ---------------------------
# First execution of the marked partition writes the marker then sleeps; any
# re-execution sees the marker and returns immediately.  Both copies return
# the same value, so whichever wins, the result is identical.  The marker
# path is bound with functools.partial, which pickles by value, so the tasks
# work under any multiprocessing start method.


def slow_once_task(marker: str, partition: int) -> list:
    if partition == 0:
        import os

        if not os.path.exists(marker):
            with open(marker, "w") as f:
                f.write("running")
            time.sleep(2.0)
    return [partition]


def always_slow_task(partition: int) -> list:
    time.sleep(1.5)
    return [partition]


class TestBackendEquivalence:
    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_results_and_metrics_match_sequential(self, backend):
        with make_ctx("sequential") as ref_ctx:
            expected = run_pipeline(ref_ctx)
            expected_snapshot = ref_ctx.metrics.snapshot()
        with make_ctx(backend) as ctx:
            result = run_pipeline(ctx)
            snapshot = ctx.metrics.snapshot()
        assert element_bytes(result) == element_bytes(expected)
        assert snapshot == expected_snapshot

    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_selection_pipeline_matches(self, backend):
        """An ST selection (R-tree filter + repartition) per backend."""
        events = generate_nyc_events(300, seed=5, days=10)
        selector = Selector(
            Envelope(-74.05, 40.6, -73.9, 40.85),
            Duration(events[0].temporal_extent.start, events[-1].temporal_extent.end),
            num_partitions=4,
        )
        with make_ctx("sequential") as ref_ctx:
            expected = selector.select(ref_ctx, events).collect()
        with make_ctx(backend) as ctx:
            result = selector.select(ctx, events).collect()
        assert element_bytes(result) == element_bytes(expected)

    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_per_worker_accounting(self, backend):
        with make_ctx(backend) as ctx:
            ctx.parallelize(range(100), 4).map(double).collect()
            workers = ctx.metrics.worker_summary()
            assert sum(row["tasks"] for row in workers.values()) == 4
            if backend == "sequential":
                assert set(workers) == {"driver"}
            elif backend == "process":
                assert all(w.startswith("pid-") for w in workers)
            histogram = ctx.metrics.worker_histogram(bins=4)
            assert set(histogram["workers"]) == set(workers)
            assert all(sum(c) > 0 for c in histogram["workers"].values())


class TestRetrySemantics:
    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_transient_fault_retried(self, backend):
        with make_ctx(backend) as ctx:
            ctx.task_failure_injector = fail_p1_first_attempt
            assert ctx.parallelize(range(40), 4).collect() == list(range(40))
            by_partition = {t.partition: t for t in ctx.metrics.tasks}
            assert by_partition[1].attempts == 2
            assert by_partition[1].failed_attempts == 1
            assert by_partition[2].attempts == 1

    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_retry_overhead_metered(self, backend):
        with make_ctx(backend) as ctx:
            ctx.task_failure_injector = fail_p0_slowly_once
            ctx.parallelize(range(40), 4).collect()
            assert ctx.metrics.failed_attempts == 1
            assert ctx.metrics.retry_seconds > 0.0

    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_permanent_fault_raises_and_is_recorded(self, backend):
        with make_ctx(backend) as ctx:
            ctx.task_failure_injector = fail_p0_always
            with pytest.raises(TaskFailure) as exc_info:
                ctx.parallelize(range(40), 4).collect()
            assert exc_info.value.partition == 0
            assert exc_info.value.attempts == ctx.max_task_retries
            assert len(ctx.metrics.failed_tasks) == 1
            assert ctx.metrics.failed_tasks[0].failed_attempts == ctx.max_task_retries


class TestProcessBackendSpecifics:
    def test_speculative_straggler_reexecution(self, tmp_path):
        from functools import partial

        task = partial(slow_once_task, str(tmp_path / "straggler.marker"))
        backend = ProcessBackend(
            max_workers=2,
            chunk_size=1,
            speculative_fraction=0.5,
            speculative_multiplier=2.0,
            speculative_floor_seconds=0.05,
            poll_interval=0.01,
            warmup=True,
        )
        with EngineContext(default_parallelism=2, backend=backend) as ctx:
            start = time.perf_counter()
            result = ctx.run_stage(4, task)
            elapsed = time.perf_counter() - start
            assert result == [[0], [1], [2], [3]]
            assert ctx.metrics.speculative_launched >= 1
            assert ctx.metrics.speculative_wins >= 1
            assert any(t.speculative for t in ctx.metrics.tasks)
            # The speculative copy skipped the 2s sleep entirely.
            assert elapsed < 1.9

    def test_timeout_rerun_recovers(self, tmp_path):
        from functools import partial

        task = partial(slow_once_task, str(tmp_path / "timeout.marker"))
        backend = ProcessBackend(
            max_workers=2,
            chunk_size=1,
            task_timeout=0.25,
            speculative_fraction=0.0,
            poll_interval=0.01,
            warmup=True,
        )
        with EngineContext(default_parallelism=2, backend=backend) as ctx:
            # Two partitions: single-partition stages run inline, and the
            # point here is exercising the pool's timeout path.
            result = ctx.run_stage(2, task)
            assert result == [[0], [1]]
            slow = next(t for t in ctx.metrics.tasks if t.partition == 0)
            assert slow.attempts >= 2  # original dispatch timed out
            assert slow.failed_attempts >= 1
            assert slow.failed_seconds > 0.0

    def test_timeout_exhaustion_fails_with_task_timeout(self):
        backend = ProcessBackend(
            max_workers=4,
            chunk_size=1,
            task_timeout=0.15,
            speculative_fraction=0.0,
            poll_interval=0.01,
            warmup=False,
        )
        with EngineContext(
            default_parallelism=4, backend=backend, max_task_retries=2
        ) as ctx:
            with pytest.raises(TaskFailure) as exc_info:
                ctx.run_stage(2, always_slow_task)
            assert isinstance(exc_info.value.cause, TaskTimeout)
            assert exc_info.value.attempts == 2
            assert len(ctx.metrics.failed_tasks) == 1

    def test_unpicklable_stage_raises_serialization_error(self):
        import threading

        lock = threading.Lock()

        # The lock capture is the point of the test.
        def unshippable(partition: int) -> list:  # repro: noqa[REPRO206]
            with lock:  # closure over a lock: not picklable, even by cloudpickle
                return [partition]

        with make_ctx("process") as ctx:
            with pytest.raises(TaskSerializationError):
                ctx.run_stage(2, unshippable)

    def test_shuffle_map_side_runs_once_driver_side(self):
        """Workers receive materialized buckets, not a recomputed map stage."""
        with make_ctx("sequential") as ref_ctx:
            run_pipeline(ref_ctx)
            expected = ref_ctx.metrics.snapshot()
        with make_ctx("process") as ctx:
            run_pipeline(ctx)
            snap = ctx.metrics.snapshot()
        assert snap["shuffle_records"] == expected["shuffle_records"]
        assert snap["stages"] == expected["stages"]
        assert snap["tasks"] == expected["tasks"]


class TestBackendSelectionPlumbing:
    def test_resolve_by_name_and_instance(self):
        assert isinstance(resolve_backend("sequential", 4), SequentialBackend)
        thread = resolve_backend("thread", 4)
        assert isinstance(thread, ThreadBackend) and thread.max_workers == 4
        same = resolve_backend(thread, 8)
        assert same is thread
        with pytest.raises(ValueError):
            resolve_backend("cluster", 4)
        assert set(BACKENDS) == {"sequential", "thread", "process"}

    def test_parallel_flag_maps_to_thread_backend(self):
        with EngineContext(default_parallelism=2, parallel=True) as ctx:
            assert ctx.backend_name == "thread"
            assert ctx.parallel
        assert EngineContext().backend_name == "sequential"

    def test_backend_options_forwarded(self):
        ctx = EngineContext(
            backend="process", backend_options={"chunk_size": 3, "warmup": False}
        )
        assert ctx.backend.chunk_size == 3
        ctx.stop()

    def test_using_backend_scopes_override(self):
        with make_ctx("sequential") as ctx:
            assert ctx.backend_name == "sequential"
            with ctx.using_backend("thread"):
                assert ctx.backend_name == "thread"
                assert ctx.parallelize(range(10), 2).map(double).collect() == [
                    2 * x for x in range(10)
                ]
            assert ctx.backend_name == "sequential"

    def test_selector_backend_override_is_eager_and_correct(self):
        events = generate_nyc_events(200, seed=9, days=5)
        query = Envelope(-74.05, 40.6, -73.9, 40.85)
        t = Duration(events[0].temporal_extent.start, events[-1].temporal_extent.end)
        with make_ctx("sequential") as ctx:
            plain = Selector(query, t).select(ctx, events).collect()
            threaded = Selector(query, t, backend="thread").select(ctx, events)
            # eager: already a source RDD, evaluated under the override
            assert ctx.backend_name == "sequential"
            assert element_bytes(threaded.collect()) == element_bytes(plain)

    def test_cli_exposes_backend_flag(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["--backend", "process", "info", "somewhere"]
        )
        assert args.backend == "process"

    def test_cost_model_chunking(self):
        assert suggest_task_chunks(0, 4) == 1
        assert suggest_task_chunks(8, 4) == 1  # fine-grained below a wave
        assert suggest_task_chunks(96, 4, target_waves=3) == 8
        with pytest.raises(ValueError):
            suggest_task_chunks(8, 0)
