"""Converter tests: allocation correctness, strategies, preMap/agg."""

import pytest

from repro.core.converters import (
    CollectiveToSingularConverter,
    Event2SmConverter,
    Event2TrajConverter,
    Event2TsConverter,
    Raster2SmConverter,
    Raster2TsConverter,
    Sm2RasterConverter,
    Traj2EventConverter,
    Traj2RasterConverter,
    Traj2SmConverter,
    Ts2RasterConverter,
)
from repro.core.converters.base import allocate
from repro.core.structures import (
    RasterStructure,
    SpatialMapStructure,
    TimeSeriesStructure,
)
from repro.engine import EngineContext
from repro.geometry import Envelope, Polygon
from repro.instances import Event, Raster, SpatialMap, TimeSeries, Trajectory
from repro.temporal import Duration
from tests.conftest import make_events, make_trajectories


@pytest.fixture
def ctx():
    return EngineContext(default_parallelism=4)


class TestAllocate:
    def test_every_event_lands_in_exactly_one_interior_cell(self):
        events = make_events(200, seed=1)
        structure = SpatialMapStructure.regular(Envelope(0, 0, 10, 10), 5, 5)
        cells = allocate(events, structure)
        total = sum(len(c) for c in cells)
        # Points on shared cell boundaries legitimately land in 2+ cells.
        assert total >= 200

    def test_conservation_across_methods(self):
        events = make_events(150, seed=2)
        structure = RasterStructure.regular(
            Envelope(0, 0, 10, 10), Duration(0, 86_400), 4, 4, 6
        )
        results = {}
        for method in ("naive", "rtree", "regular"):
            cells = allocate(events, structure, method)
            results[method] = [sorted(ev.data for ev in c) for c in cells]
        assert results["naive"] == results["rtree"] == results["regular"]

    def test_trajectory_segment_crossing_allocated(self):
        # Two samples on either side of a cell; the segment crosses it.
        traj = Trajectory.of_points([(0.5, 0.5, 0), (2.5, 0.5, 10)], data="x")
        structure = SpatialMapStructure.regular(Envelope(0, 0, 3, 1), 3, 1)
        cells = allocate([traj], structure)
        assert all(len(c) == 1 for c in cells)  # middle cell included

    def test_trajectory_temporal_restriction(self):
        traj = Trajectory.of_points([(0.5, 0.5, 0), (0.6, 0.6, 10)], data="x")
        structure = TimeSeriesStructure.regular(Duration(0, 100), 10)
        cells = allocate([traj], structure)
        assert len(cells[0]) == 1  # t in [0, 10]
        assert all(len(c) == 0 for c in cells[2:])

    def test_irregular_polygon_exactness(self):
        tri = Polygon([(0, 0), (10, 0), (0, 10)])
        structure = SpatialMapStructure([tri])
        inside = Event.of_point(1, 1, 0, data="in")
        outside_mbr = Event.of_point(9, 9, 0, data="out")  # in MBR, not in tri
        cells = allocate([inside, outside_mbr], structure, "rtree")
        assert [ev.data for ev in cells[0]] == ["in"]

    def test_stats_accounting(self):
        from repro.core.converters.base import AllocationStats

        events = make_events(50, seed=3)
        structure = SpatialMapStructure.regular(Envelope(0, 0, 10, 10), 4, 4)
        stats = AllocationStats()
        allocate(events, structure, "naive", stats)
        assert stats.instances == 50
        assert stats.candidate_tests == 50 * 16
        stats2 = AllocationStats()
        allocate(events, structure, "regular", stats2)
        assert stats2.candidate_tests < stats.candidate_tests


class TestSingularToCollective:
    def test_event2ts_counts(self, ctx):
        events = make_events(300, seed=4)
        rdd = ctx.parallelize(events, 4)
        structure = TimeSeriesStructure.regular(Duration(0, 86_400), 24)
        partials = Event2TsConverter(structure).convert(rdd)
        assert partials.count() == 4  # one partial per partition
        merged = partials.reduce(lambda a, b: a.merge_with(b, lambda x, y: x + y))
        assert sum(len(v) for v in merged.cell_values()) == 300

    def test_pre_map_applied(self, ctx):
        events = make_events(50, seed=5)
        rdd = ctx.parallelize(events, 2)
        structure = TimeSeriesStructure.regular(Duration(0, 86_400), 4)
        converter = Event2TsConverter(structure)
        partials = converter.convert(rdd, pre_map=lambda ev: ev.map_data(lambda d: d * 10))
        merged = partials.reduce(lambda a, b: a.merge_with(b, lambda x, y: x + y))
        all_data = [ev.data for cell in merged.cell_values() for ev in cell]
        assert all(d % 10 == 0 for d in all_data)

    def test_agg_applied_per_cell(self, ctx):
        events = make_events(100, seed=6)
        rdd = ctx.parallelize(events, 2)
        structure = TimeSeriesStructure.regular(Duration(0, 86_400), 6)
        partials = Event2TsConverter(structure).convert(rdd, agg=len)
        merged = partials.reduce(lambda a, b: a.merge_with(b, lambda x, y: x + y))
        assert sum(merged.cell_values()) == 100

    def test_convert_merged(self, ctx):
        events = make_events(80, seed=7)
        rdd = ctx.parallelize(events, 3)
        structure = SpatialMapStructure.regular(Envelope(0, 0, 10, 10), 3, 3)
        merged = Event2SmConverter(structure).convert_merged(rdd)
        assert isinstance(merged, SpatialMap)
        assert sum(len(v) for v in merged.cell_values()) >= 80

    def test_traj_converters_produce_correct_types(self, ctx):
        trajs = make_trajectories(20, seed=8)
        rdd = ctx.parallelize(trajs, 2)
        sm = Traj2SmConverter(
            SpatialMapStructure.regular(Envelope(0, 0, 10, 10), 3, 3)
        ).convert(rdd)
        assert isinstance(sm.first(), SpatialMap)
        raster = Traj2RasterConverter(
            RasterStructure.regular(Envelope(0, 0, 10, 10), Duration(0, 86_400), 2, 2, 4)
        ).convert(rdd)
        assert isinstance(raster.first(), Raster)

    def test_broadcast_metered(self, ctx):
        events = make_events(30, seed=9)
        rdd = ctx.parallelize(events, 2)
        ctx.metrics.reset()
        structure = TimeSeriesStructure.regular(Duration(0, 86_400), 8)
        Event2TsConverter(structure).convert(rdd).collect()
        assert ctx.metrics.broadcast_count == 1
        assert ctx.metrics.broadcast_records == 8
        assert ctx.metrics.shuffle_records == 0  # no data shuffle

    def test_structure_from_raw_cells(self, ctx):
        # Converters accept raw slot/geometry lists too.
        events = make_events(20, seed=10)
        rdd = ctx.parallelize(events, 2)
        converter = Event2TsConverter(Duration(0, 86_400).split(4))
        assert converter.convert(rdd).count() == 2


class TestSingularToSingular:
    def test_traj2event_explodes_points(self, ctx):
        trajs = make_trajectories(10, seed=11, points=8)
        rdd = ctx.parallelize(trajs, 2)
        events = Traj2EventConverter().convert(rdd)
        assert events.count() == 80
        first = events.first()
        assert isinstance(first, Event)
        assert first.data == "traj-0"

    def test_traj2event_keep_index(self, ctx):
        trajs = make_trajectories(2, seed=12, points=3)
        rdd = ctx.parallelize(trajs, 1)
        events = Traj2EventConverter(keep_index=True).convert(rdd).collect()
        assert events[0].value[0] == 0
        assert events[2].value[0] == 2

    def test_event2traj_roundtrip(self, ctx):
        trajs = make_trajectories(15, seed=13)
        rdd = ctx.parallelize(trajs, 3)
        events = Traj2EventConverter().convert(rdd)
        rebuilt = Event2TrajConverter().convert(events)
        original = {t.data: t for t in trajs}
        for traj in rebuilt.collect():
            assert len(traj.entries) == len(original[traj.data].entries)
            assert traj.temporal_extent == original[traj.data].temporal_extent

    def test_event2traj_min_points(self, ctx):
        events = [Event.of_point(0, 0, float(i), data="only") for i in range(2)]
        rdd = ctx.parallelize(events, 1)
        assert Event2TrajConverter(min_points=3).convert(rdd).count() == 0
        assert Event2TrajConverter(min_points=2).convert(rdd).count() == 1

    def test_event2traj_uses_mapside_combine(self, ctx):
        trajs = make_trajectories(10, seed=14, points=20)
        events = Traj2EventConverter().convert(ctx.parallelize(trajs, 4)).persist()
        events.count()
        ctx.metrics.reset()
        Event2TrajConverter().convert(events).collect()
        # Map-side combine: shuffled records bounded by keys * partitions,
        # far fewer than the 200 raw events.
        assert ctx.metrics.shuffle_records <= 10 * 4


class TestCollectiveConversions:
    def _raster(self):
        return Raster.regular(
            Envelope(0, 0, 2, 2), Duration(0, 4), 2, 1, 2
        ).with_cell_values([1, 2, 3, 4])

    def test_raster2sm_groups_spatial(self, ctx):
        rdd = ctx.parallelize([self._raster()], 1)
        sm = Raster2SmConverter(lambda a, b: a + b).convert(rdd).first()
        assert isinstance(sm, SpatialMap)
        assert sm.cell_values() == [3, 7]  # 1+2 and 3+4

    def test_raster2ts_groups_temporal(self, ctx):
        rdd = ctx.parallelize([self._raster()], 1)
        ts = Raster2TsConverter(lambda a, b: a + b).convert(rdd).first()
        assert isinstance(ts, TimeSeries)
        assert ts.cell_values() == [4, 6]  # 1+3 and 2+4

    def test_sm2raster_lifts_duration(self, ctx):
        sm = SpatialMap.of_geometries(
            Envelope(0, 0, 2, 1).split(2, 1),
            temporal=Duration(0, 10),
        ).with_cell_values(["a", "b"])
        raster = Sm2RasterConverter().convert(ctx.parallelize([sm], 1)).first()
        assert isinstance(raster, Raster)
        assert raster.cell_values() == ["a", "b"]
        assert all(e.temporal == Duration(0, 10) for e in raster.entries)

    def test_ts2raster(self, ctx):
        ts = TimeSeries.regular(Duration(0, 4), 2.0).with_cell_values([1, 2])
        geom = Envelope(0, 0, 5, 5)
        raster = Ts2RasterConverter(geom).convert(ctx.parallelize([ts], 1)).first()
        assert raster.n_cells == 2
        assert all(e.spatial == geom for e in raster.entries)

    def test_collective_to_singular_flattens(self, ctx):
        events = make_events(60, seed=15)
        rdd = ctx.parallelize(events, 2)
        structure = TimeSeriesStructure.regular(Duration(0, 86_400), 4)
        partials = Event2TsConverter(structure).convert(rdd)
        back = CollectiveToSingularConverter().convert(partials)
        assert sorted(ev.data for ev in back.collect()) == sorted(
            ev.data for ev in events
        )

    def test_collective_to_singular_distinct_key(self, ctx):
        ev = Event.of_point(0.5, 0.5, 0.0, data="dup")
        sm = SpatialMap.regular(Envelope(0, 0, 1, 1), 1, 1).with_cell_values([[ev, ev]])
        rdd = ctx.parallelize([sm], 1)
        out = CollectiveToSingularConverter(distinct_key=lambda e: e.data).convert(rdd)
        assert out.count() == 1

    def test_collective_to_singular_type_check(self, ctx):
        sm = SpatialMap.regular(Envelope(0, 0, 1, 1), 1, 1).with_cell_values([42])
        rdd = ctx.parallelize([sm], 1)
        with pytest.raises(Exception):  # surfaces as TaskFailure wrapping TypeError
            CollectiveToSingularConverter().convert(rdd).collect()
