"""Smoke tests: every example script runs to completion.

Each example is executed in-process (imported and ``main()`` called) so
failures carry real tracebacks; examples generate their own data in temp
dirs, so the tests are hermetic.  The two heaviest examples are marked
slow-ish but still bounded at laptop scale.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"

EXAMPLES = [
    "quickstart.py",
    "traffic_speed_raster.py",
    "poi_count_osm.py",
    "stay_points_custom_extractor.py",
    "road_flow_mapmatching.py",
    "periodic_ingestion.py",
    "traffic_forecast_end_to_end.py",
]


def run_example(filename: str) -> None:
    path = EXAMPLES_DIR / filename
    spec = importlib.util.spec_from_file_location(f"example_{path.stem}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    try:
        spec.loader.exec_module(module)
        module.main()
    finally:
        sys.modules.pop(spec.name, None)


@pytest.mark.parametrize("filename", EXAMPLES)
def test_example_runs(filename, capsys):
    run_example(filename)
    out = capsys.readouterr().out
    assert out.strip(), f"{filename} produced no output"
