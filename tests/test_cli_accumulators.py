"""CLI and accumulator tests."""


from repro.cli import main
from repro.engine import Accumulator, EngineContext, counter
from repro.stio import StDataset


class TestAccumulators:
    def test_counter(self):
        acc = counter("records")
        acc.add(3)
        acc.add(4)
        assert acc.value == 7
        acc.reset()
        assert acc.value == 0

    def test_custom_combine(self):
        acc = Accumulator(set(), combine=lambda a, b: a | b)
        acc.add({1})
        acc.add({2, 3})
        assert acc.value == {1, 2, 3}

    def test_used_inside_tasks(self):
        ctx = EngineContext(default_parallelism=4)
        seen = counter()

        def track(x):
            seen.add(1)
            return x

        ctx.parallelize(range(100), 8).map(track).count()
        assert seen.value == 100

    def test_repr(self):
        acc = counter("hits")
        acc.add(2)
        assert "hits" in repr(acc)
        assert "2" in repr(acc)


class TestCli:
    def test_generate_and_info(self, tmp_path, capsys):
        out = tmp_path / "nyc"
        assert main(["generate", "nyc", "--records", "500", "--out", str(out)]) == 0
        assert StDataset(out).metadata().total_records == 500
        assert main(["info", str(out)]) == 0
        captured = capsys.readouterr().out
        lines = captured.splitlines()
        assert any(l.startswith("records") and l.endswith("500") for l in lines)
        assert any(l.startswith("instance type") and l.endswith("event") for l in lines)

    def test_select_with_pruning(self, tmp_path, capsys):
        out = tmp_path / "nyc"
        main(["generate", "nyc", "--records", "800", "--out", str(out), "--seed", "3"])
        code = main(
            [
                "select", str(out),
                "--bbox", "-74.0", "40.7", "-73.95", "40.75",
            ]
        )
        assert code == 0
        captured = capsys.readouterr().out
        assert "selected" in captured
        assert "partitions read:" in captured

    def test_select_without_query_errors(self, tmp_path):
        out = tmp_path / "nyc"
        main(["generate", "nyc", "--records", "100", "--out", str(out)])
        assert main(["select", str(out)]) == 2

    def test_full_scan_flag(self, tmp_path, capsys):
        out = tmp_path / "nyc"
        main(["generate", "nyc", "--records", "400", "--out", str(out)])
        main(
            [
                "select", str(out), "--full-scan",
                "--bbox", "-74.0", "40.7", "-73.99", "40.71",
            ]
        )
        captured = capsys.readouterr().out
        # Full scan reads every partition.
        lines = [ln for ln in captured.splitlines() if "partitions read" in ln]
        read, total = lines[-1].split()[2].split("/")
        assert read == total

    def test_reindex(self, tmp_path, capsys):
        out = tmp_path / "porto"
        main(["generate", "porto", "--records", "100", "--out", str(out), "--no-indexed"])
        assert main(["index", str(out), "--gt", "2", "--gs", "2"]) == 0
        assert "re-indexed" in capsys.readouterr().out
        assert StDataset(out).metadata().total_records == 100

    def test_generate_all_kinds(self, tmp_path):
        for name in ("porto", "air", "osm"):
            out = tmp_path / name
            assert main(["generate", name, "--records", "200", "--out", str(out)]) == 0
            assert StDataset(out).metadata().total_records > 0
