"""QuadTree and XZ2 curve tests."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import Envelope
from repro.index import QuadTree, xz2_key, xz2_query_ranges

coord01 = st.floats(min_value=0, max_value=1, allow_nan=False)


class TestQuadTree:
    def test_build_and_size(self):
        pts = [(random.Random(1).uniform(0, 1), random.Random(2).uniform(0, 1))]
        tree = QuadTree.build([(0.1, 0.1), (0.9, 0.9)], capacity=4)
        assert len(tree) == 2
        del pts

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            QuadTree.build([])

    def test_leaves_partition_bounds(self):
        rng = random.Random(5)
        pts = [(rng.uniform(0, 10), rng.uniform(0, 10)) for _ in range(500)]
        tree = QuadTree.build(pts, capacity=20)
        leaves = tree.leaves()
        assert len(leaves) > 1
        total_area = sum(leaf.area for leaf in leaves)
        assert total_area == pytest.approx(tree.bounds.area, rel=1e-9)

    def test_leaf_for_contains_point(self):
        rng = random.Random(6)
        pts = [(rng.uniform(0, 10), rng.uniform(0, 10)) for _ in range(300)]
        tree = QuadTree.build(pts, capacity=10)
        for x, y in pts[:50]:
            leaf = tree.leaf_for(x, y)
            assert leaf.contains_point(x, y)

    def test_out_of_bounds_point_clamped(self):
        tree = QuadTree.build([(0.5, 0.5), (0.7, 0.7)], capacity=1)
        leaf = tree.leaf_for(99.0, 99.0)  # clamped to the max corner
        assert leaf in tree.leaves()

    def test_max_depth_caps_degenerate_input(self):
        # All points identical: splitting can never separate them.
        tree = QuadTree.build([(0.5, 0.5)] * 100, capacity=2, max_depth=5)
        assert len(tree) == 100

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            QuadTree(Envelope(0, 0, 1, 1), capacity=0)

    def test_density_adaptivity(self):
        # A dense cluster should produce smaller leaves than sparse regions.
        rng = random.Random(7)
        dense = [(rng.gauss(0.2, 0.01), rng.gauss(0.2, 0.01)) for _ in range(400)]
        sparse = [(rng.uniform(0.5, 1.0), rng.uniform(0.5, 1.0)) for _ in range(40)]
        tree = QuadTree.build(dense + sparse, capacity=20, bounds=Envelope(0, 0, 1, 1))
        leaf_dense = tree.leaf_for(0.2, 0.2)
        leaf_sparse = tree.leaf_for(0.9, 0.9)
        assert leaf_dense.area < leaf_sparse.area


SPACE = Envelope(0, 0, 1, 1)


class TestXZ2:
    def test_key_deterministic(self):
        env = Envelope(0.1, 0.1, 0.15, 0.15)
        assert xz2_key(env, SPACE) == xz2_key(env, SPACE)

    def test_root_straddler_gets_root_key(self):
        # A geometry crossing the center can't descend: key 0.
        assert xz2_key(Envelope(0.4, 0.4, 0.6, 0.6), SPACE) == 0

    def test_small_geometry_gets_deep_key(self):
        tiny = xz2_key(Envelope(0.10, 0.10, 0.101, 0.101), SPACE)
        big = xz2_key(Envelope(0.1, 0.1, 0.45, 0.45), SPACE)
        assert tiny > big

    def test_query_ranges_sorted_and_merged(self):
        ranges = xz2_query_ranges(Envelope(0.0, 0.0, 0.3, 0.3), SPACE)
        for (lo1, hi1), (lo2, hi2) in zip(ranges, ranges[1:]):
            assert hi1 < lo2 - 1  # disjoint and non-adjacent after merging
            assert lo1 <= hi1

    def test_full_space_query_covers_everything(self):
        ranges = xz2_query_ranges(SPACE, SPACE, levels=4)
        # Full cover: one range from the root over the whole tree.
        total = (4 ** 5 - 1) // 3
        assert ranges == [(0, total - 1)]

    @given(coord01, coord01, coord01, coord01, coord01, coord01, coord01, coord01)
    @settings(max_examples=100, deadline=None)
    def test_no_false_negatives(self, ax, ay, bx, by, qx1, qy1, qx2, qy2):
        """Any geometry intersecting the query must have its key in the
        query's key ranges — the index may over-select, never under."""
        gx1, gx2 = sorted((ax, bx))
        gy1, gy2 = sorted((ay, by))
        qxl, qxh = sorted((qx1, qx2))
        qyl, qyh = sorted((qy1, qy2))
        geom = Envelope(gx1, gy1, gx2, gy2)
        query = Envelope(qxl, qyl, qxh, qyh)
        if not geom.intersects_envelope(query):
            return
        key = xz2_key(geom, SPACE)
        ranges = xz2_query_ranges(query, SPACE)
        assert any(lo <= key <= hi for lo, hi in ranges)
