"""Lineage inspection tests."""

import pytest

from repro.engine import EngineContext


@pytest.fixture
def ctx():
    return EngineContext(default_parallelism=4)


class TestDebugString:
    def test_source_only(self, ctx):
        rdd = ctx.parallelize(range(10), 2)
        out = rdd.debug_string()
        assert "SourceRDD(2)" in out
        assert out.count("\n") == 0

    def test_narrow_chain_collapses_to_one_stage(self, ctx):
        rdd = ctx.parallelize(range(10), 2).map(lambda x: x).filter(bool)
        assert rdd.count_stages() == 0
        out = rdd.debug_string()
        assert out.splitlines()[0].startswith("MapPartitionsRDD")

    def test_shuffle_marked(self, ctx):
        rdd = ctx.parallelize([(1, 2)], 1).reduce_by_key(lambda a, b: a + b)
        out = rdd.debug_string()
        assert "[shuffle: combine]" in out
        assert rdd.count_stages() == 1

    def test_group_and_route_labels(self, ctx):
        grouped = ctx.parallelize([(1, 2)], 1).group_by_key()
        routed = ctx.parallelize(range(4), 2).repartition(2)
        assert "[shuffle: group]" in grouped.debug_string()
        assert "[shuffle: route]" in routed.debug_string()

    def test_union_shows_both_branches(self, ctx):
        a = ctx.parallelize([1], 1)
        b = ctx.parallelize([2], 1)
        out = a.union(b).debug_string()
        assert out.count("SourceRDD(1)") == 2

    def test_cached_flag(self, ctx):
        rdd = ctx.parallelize(range(5), 1).persist()
        assert "[cached]" in rdd.debug_string()

    def test_multi_stage_count(self, ctx):
        rdd = (
            ctx.parallelize([(i % 3, i) for i in range(30)], 3)
            .reduce_by_key(lambda a, b: a + b)
            .map(lambda kv: (kv[1] % 2, kv[0]))
            .group_by_key()
        )
        assert rdd.count_stages() == 2

    def test_join_lineage_includes_cogroup_shuffle(self, ctx):
        a = ctx.parallelize([(1, "a")], 1)
        b = ctx.parallelize([(1, "b")], 1)
        joined = a.join(b)
        assert joined.count_stages() >= 1
        assert "[shuffle: group]" in joined.debug_string()
