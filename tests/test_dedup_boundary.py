"""Regression tests for duplicate-mode boundary double-counting.

Duration/Envelope/STBox intersection is closed-interval, so an instance
sitting *exactly* on a partition boundary overlaps both neighbouring
cells and always fans out under ``duplicate=True``.  Before replica
tagging, every copy looked identical downstream and global aggregates
counted the instance once per overlapped partition.  These tests build
that exact situation — points placed on fitted T-STR cell boundaries —
and assert each instance contributes exactly once to every built-in
aggregate path, while local-neighbourhood operators still see all copies.
"""

from __future__ import annotations

import pytest

from repro.core.converters import Event2SmConverter, Event2TsConverter
from repro.core.extractors import (
    EventClusterExtractor,
    SmFlowExtractor,
    TsFlowExtractor,
)
from repro.core.selector import Selector
from repro.core.structures import TimeSeriesStructure
from repro.engine import EngineContext
from repro.geometry import Envelope
from repro.instances import Event
from repro.partitioners import TSTRPartitioner
from repro.temporal import Duration

from .conftest import make_events

T_EXTENT = 86_400.0


def _with_boundary_events(partitioner: TSTRPartitioner, events):
    """Append one event per shared T-STR boundary coordinate.

    Fits ``partitioner`` on ``events`` and places extra events exactly on
    interior partition edges (both spatial and temporal), guaranteeing
    ``assign_all`` fans each one out to at least two partitions.
    """
    partitioner.fit(events)
    extras = []
    for bound in partitioner.boundaries():
        # boundaries() yields 3-d (x, y, t) boxes; place events exactly on
        # each box's max-x and max-t faces (interior edges only — the outer
        # hull is UNBOUNDED-padded and shared with nobody).
        max_x, _, max_t = bound.maxs
        cx, cy, ct = bound.center()
        # Centers of UNBOUNDED-padded hull boxes land at ±5e17 — clamp the
        # free coordinates back into the data extent so the crafted events
        # stay inside every query range and structure.
        cx = min(max(cx, 0.5), 9.5)
        cy = min(max(cy, 0.5), 9.5)
        ct = min(max(ct, 1.0), T_EXTENT - 1.0)
        if max_x < 1.0e17:
            extras.append(Event.of_point(max_x, cy, ct, data="bx"))
        if max_t < 1.0e17:
            extras.append(Event.of_point(cx, cy, max_t, data="bt"))
    on_boundary = [e for e in extras if len(partitioner.assign_all(e)) >= 2]
    assert on_boundary, "no event landed on a shared partition boundary"
    return on_boundary


class TestBoundaryFanOut:
    def test_boundary_event_replicated_but_counted_once_ts(self):
        """The core regression: flow counts must not see replicas."""
        ctx = EngineContext(default_parallelism=4)
        events = make_events(200, t_extent=T_EXTENT)
        partitioner = TSTRPartitioner(2, 2)
        boundary = _with_boundary_events(partitioner, events)
        everything = events + boundary

        rdd = ctx.parallelize(everything, 4)
        dup = partitioner.partition(rdd, duplicate=True, sample_fraction=1.0)
        # Precondition: replication really happened.
        assert dup.count() > len(everything)

        slots = TimeSeriesStructure.of_interval(Duration(0.0, T_EXTENT), 3_600.0)
        converted = Event2TsConverter(slots).convert(dup)
        flow = TsFlowExtractor().extract(converted)
        assert sum(flow.cell_values()) == len(everything)

    def test_boundary_event_counted_once_sm(self):
        ctx = EngineContext(default_parallelism=4)
        events = make_events(200, t_extent=T_EXTENT)
        partitioner = TSTRPartitioner(2, 2)
        boundary = _with_boundary_events(partitioner, events)
        everything = events + boundary

        dup = partitioner.partition(
            ctx.parallelize(everything, 4), duplicate=True, sample_fraction=1.0
        )
        assert dup.count() > len(everything)

        cells = [
            Envelope(x, y, x + 5.0, y + 5.0)
            for x in (0.0, 5.0)
            for y in (0.0, 5.0)
        ]
        counts = SmFlowExtractor().extract(Event2SmConverter(cells).convert(dup))
        # Events sitting on the interior 5.0 lines hit several map cells —
        # that is legitimate geometry, not partition replication — so
        # compare against the primaries-only expectation computed locally.
        expected = sum(
            sum(1 for c in cells if c.contains_point(e.spatial.x, e.spatial.y))
            for e in everything
        )
        assert sum(counts.cell_values()) == expected

    def test_cluster_extractor_ignores_replicas(self):
        ctx = EngineContext(default_parallelism=4)
        events = make_events(150, t_extent=T_EXTENT)
        partitioner = TSTRPartitioner(2, 2)
        boundary = _with_boundary_events(partitioner, events)
        everything = events + boundary

        dup = partitioner.partition(
            ctx.parallelize(everything, 4), duplicate=True, sample_fraction=1.0
        )
        clusters = dict(EventClusterExtractor(20.0, min_count=1).extract(dup).collect())
        assert sum(clusters.values()) == len(everything)

    def test_selector_duplicate_pipeline_counts_once(self):
        """End-to-end: Selector(duplicate=True) → convert → extract."""
        ctx = EngineContext(default_parallelism=4)
        events = make_events(200, t_extent=T_EXTENT)
        partitioner = TSTRPartitioner(2, 2)
        boundary = _with_boundary_events(partitioner, events)
        everything = events + boundary

        selector = Selector(
            Envelope(0.0, 0.0, 10.0, 10.0),
            Duration(0.0, T_EXTENT),
            partitioner=partitioner,
            duplicate=True,
        )
        selected = selector.select(ctx, everything)
        assert selected.count() > len(everything)

        slots = TimeSeriesStructure.of_interval(Duration(0.0, T_EXTENT), 3_600.0)
        flow = TsFlowExtractor().extract(Event2TsConverter(slots).convert(selected))
        assert sum(flow.cell_values()) == len(everything)


class TestReplicaTag:
    def test_replica_equal_but_tagged(self):
        ev = Event.of_point(1.0, 2.0, 3.0, data="x")
        rep = ev.replica()
        assert rep == ev  # tag excluded from value equality
        assert ev.dup_primary is True
        assert rep.dup_primary is False

    def test_replace_preserves_tag(self):
        rep = Event.of_point(1.0, 2.0, 3.0).replica()
        clone = rep._replace(rep.entries, "new-data")
        assert clone.dup_primary is False

    def test_duplicate_false_unchanged(self):
        """Without duplicate mode nothing is tagged or replicated."""
        ctx = EngineContext(default_parallelism=4)
        events = make_events(100, t_extent=T_EXTENT)
        out = TSTRPartitioner(2, 2).partition(
            ctx.parallelize(events, 4), duplicate=False, sample_fraction=1.0
        )
        collected = out.collect()
        assert len(collected) == len(events)
        assert all(e.dup_primary for e in collected)

    def test_exactly_one_primary_per_instance(self):
        """Each distinct instance keeps exactly one primary copy."""
        ctx = EngineContext(default_parallelism=4)
        events = make_events(150, t_extent=T_EXTENT)
        partitioner = TSTRPartitioner(2, 2)
        boundary = _with_boundary_events(partitioner, events)
        everything = events + boundary

        dup = partitioner.partition(
            ctx.parallelize(everything, 4), duplicate=True, sample_fraction=1.0
        )
        primaries = [e for e in dup.collect() if e.dup_primary]
        assert len(primaries) == len(everything)


@pytest.mark.parametrize("backend", ["sequential", "thread", "process"])
def test_dedup_on_every_backend(backend):
    """Replica tags survive pickling to process workers."""
    ctx = EngineContext(default_parallelism=2, backend=backend)
    events = make_events(80, t_extent=T_EXTENT)
    partitioner = TSTRPartitioner(2, 2)
    boundary = _with_boundary_events(partitioner, events)
    everything = events + boundary

    dup = partitioner.partition(
        ctx.parallelize(everything, 2), duplicate=True, sample_fraction=1.0
    )
    slots = TimeSeriesStructure.of_interval(Duration(0.0, T_EXTENT), 3_600.0)
    flow = TsFlowExtractor().extract(Event2TsConverter(slots).convert(dup))
    assert sum(flow.cell_values()) == len(everything)
