"""Miscellaneous coverage: CLI temporal selection, checkpoint over
shuffles, geometry distance matrix, structure factories."""

import pytest

from repro.cli import main
from repro.engine import EngineContext
from repro.geometry import Envelope, LineString, Point, Polygon
from repro.instances import TimeSeries
from repro.temporal import Duration


@pytest.fixture
def ctx():
    return EngineContext(default_parallelism=3)


class TestCliTemporalOnly:
    def test_time_only_select(self, tmp_path, capsys):
        out = tmp_path / "porto"
        main(["generate", "porto", "--records", "120", "--out", str(out), "--seed", "9"])
        from repro.datasets.porto import PORTO_START

        code = main(
            [
                "select", str(out),
                "--time", str(PORTO_START), str(PORTO_START + 40 * 86_400),
            ]
        )
        assert code == 0
        assert "selected" in capsys.readouterr().out


class TestCheckpointAfterShuffle:
    def test_checkpoint_of_shuffled_rdd(self, ctx, tmp_path):
        pairs = ctx.parallelize([(i % 5, i) for i in range(50)], 4)
        reduced = pairs.reduce_by_key(lambda a, b: a + b)
        restored = reduced.checkpoint(tmp_path / "ck")
        assert dict(restored.collect()) == dict(reduced.collect())
        # The restored RDD has no shuffle in its lineage.
        assert restored.count_stages() == 0


class TestDistanceMatrix:
    LINE = LineString([(0, 0), (4, 0)])
    POLY = Polygon([(10, 0), (12, 0), (10, 2)])

    def test_line_to_polygon_disjoint(self):
        d = self.LINE.distance_to(self.POLY)
        assert d == pytest.approx(6.0)

    def test_polygon_to_line_symmetric(self):
        assert self.POLY.distance_to(self.LINE) == pytest.approx(
            self.LINE.distance_to(self.POLY)
        )

    def test_polygon_to_polygon(self):
        other = Polygon([(20, 0), (22, 0), (20, 2)])
        assert self.POLY.distance_to(other) == pytest.approx(8.0)

    def test_polygon_to_envelope(self):
        env = Envelope(14, 0, 16, 2)
        assert self.POLY.distance_to(env) == pytest.approx(2.0)

    def test_touching_is_zero(self):
        touching = Polygon([(4, 0), (6, 0), (4, 2)])
        assert self.LINE.distance_to(touching) == 0.0

    def test_linestring_envelope_distance(self):
        env = Envelope(0, 5, 1, 6)
        assert self.LINE.distance_to(env) == pytest.approx(5.0)

    def test_point_linestring_dispatch(self):
        p = Point(2, 3)
        assert p.distance_to(self.LINE) == pytest.approx(3.0)
        assert self.LINE.distance_to(p) == pytest.approx(3.0)


class TestStructureFactories:
    def test_time_series_dict_factory(self):
        ts = TimeSeries.of_slots(Duration(0, 10).split(2), value_factory=dict)
        assert ts.cell_values() == [{}, {}]
        # Factories must produce independent cells, not shared references.
        ts.entries[0].value["k"] = 1
        assert ts.entries[1].value == {}

    def test_spatial_map_structure_geometry_kinds(self):
        from repro.core.structures import SpatialMapStructure

        mixed = SpatialMapStructure(
            [Envelope(0, 0, 1, 1), Polygon([(2, 0), (3, 0), (2, 1)])]
        )
        assert not mixed.is_regular
        hits = mixed.candidate_cells(Envelope(2.1, 0.1, 2.2, 0.2), Duration(0, 1))
        assert hits == [1]

    def test_raster_structure_exact_cells(self):
        from repro.core.structures import RasterStructure

        tri = Polygon([(0, 0), (4, 0), (0, 4)])
        s = RasterStructure.of_product([tri], Duration(0, 10).split(2))
        # MBR candidate in slot 0; exact refinement kicks the corner out.
        candidates = s.candidate_cells(Envelope(3, 3, 3.5, 3.5), Duration(0, 4), "rtree")
        exact = s.exact_cells(Point(3.4, 3.4), Duration(0, 4), candidates)
        assert exact == []


class TestSelectorSourceErrors:
    def test_missing_dataset_dir(self, ctx, tmp_path):
        from repro.core import Selector

        with pytest.raises(FileNotFoundError):
            Selector(Envelope(0, 0, 1, 1), Duration(0, 1)).select(
                ctx, tmp_path / "nope"
            )
