"""The serve daemon: admission, queueing, caching, parity, invalidation."""

from __future__ import annotations

import statistics
import threading
import time
from contextlib import contextmanager

import pytest

from repro.cli import main as cli_main
from repro.columnar.boxtable import BoxTable
from repro.columnar.cache import (
    PartitionIndexCache,
    configure_selection_cache,
    selection_cache,
)
from repro.columnar.packed_rtree import PackedRTree
from repro.core import Selector
from repro.engine import EngineContext
from repro.geometry import Envelope
from repro.index.rtree import RTree
from repro.instances import Event
from repro.serve import (
    AdmissionController,
    BoundedPriorityQueue,
    CachedResult,
    QueryServer,
    ResultCache,
    ServeClient,
    ServeConfig,
    TenantPolicy,
    TokenBucket,
    wait_until_ready,
)
from repro.serve.protocol import (
    parse_query_range,
    parse_request,
    query_cache_key,
    records_document,
    result_document,
)
from repro.stio import StDataset
from repro.stio.metadata import DatasetMetadata
from repro.temporal import Duration
from tests.conftest import make_events


@pytest.fixture(autouse=True)
def _restore_selection_cache():
    """QueryServer reconfigures the process-wide index cache; restore it."""
    yield
    cache = configure_selection_cache(capacity=64, max_bytes=None)
    cache.clear()


@contextmanager
def running_server(directory, **config_kwargs):
    server = QueryServer(directory, ServeConfig(**config_kwargs))
    host, port = server.start()
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        wait_until_ready(host, port)
        yield server, host, port
    finally:
        server.stop()
        thread.join(timeout=5)


def write_dataset(directory, n=2000, partitions=8):
    events = make_events(n)
    StDataset.write(directory, [events[i::partitions] for i in range(partitions)], "event")
    return events


# ---------------------------------------------------------------------------
# Admission control


class TestTokenBucket:
    def test_burst_then_refill(self):
        now = [0.0]
        bucket = TokenBucket(rate=2.0, burst=3.0, clock=lambda: now[0])
        assert all(bucket.try_acquire() for _ in range(3))
        assert not bucket.try_acquire()
        now[0] = 1.0  # 2 tokens refilled
        assert bucket.try_acquire() and bucket.try_acquire()
        assert not bucket.try_acquire()

    def test_refill_caps_at_burst(self):
        now = [0.0]
        bucket = TokenBucket(rate=100.0, burst=2.0, clock=lambda: now[0])
        now[0] = 60.0
        assert bucket.tokens == 2.0

    def test_zero_rate_never_refills(self):
        now = [0.0]
        bucket = TokenBucket(rate=0.0, burst=2.0, clock=lambda: now[0])
        assert bucket.try_acquire() and bucket.try_acquire()
        now[0] = 1e9
        assert not bucket.try_acquire()


class TestTenantPolicy:
    def test_from_spec_full_and_partial(self):
        name, policy = TenantPolicy.from_spec("ml:100:40:16")
        assert name == "ml" and policy == TenantPolicy(100.0, 40.0, 16)
        _, partial = TenantPolicy.from_spec("ml:5")
        assert partial.rate == 5.0
        assert partial.burst == TenantPolicy().burst
        assert partial.max_inflight == TenantPolicy().max_inflight

    @pytest.mark.parametrize("spec", [":5", "a:b", "a:1:2:3:4"])
    def test_from_spec_rejects(self, spec):
        with pytest.raises(ValueError):
            TenantPolicy.from_spec(spec)

    def test_validation(self):
        with pytest.raises(ValueError):
            TenantPolicy(rate=-1)
        with pytest.raises(ValueError):
            TenantPolicy(max_inflight=0)


class TestAdmissionController:
    def test_inflight_cap_and_release(self):
        ctrl = AdmissionController(default=TenantPolicy(rate=1000, burst=100, max_inflight=2))
        assert ctrl.admit("t") is None
        assert ctrl.admit("t") is None
        assert ctrl.admit("t") == "max_inflight"
        ctrl.release("t")
        assert ctrl.admit("t") is None

    def test_rate_shed_and_snapshot(self):
        now = [0.0]
        ctrl = AdmissionController(
            default=TenantPolicy(rate=0, burst=1, max_inflight=10), clock=lambda: now[0]
        )
        assert ctrl.admit("a") is None
        assert ctrl.admit("a") == "rate_limit"
        ctrl.release("a")
        snap = ctrl.snapshot()["a"]
        assert snap == {
            "admitted": 1, "completed": 1, "shed_rate": 1,
            "shed_inflight": 0, "inflight": 0,
        }

    def test_named_tenants_do_not_share_budgets(self):
        ctrl = AdmissionController(
            default=TenantPolicy(rate=0, burst=1, max_inflight=8),
            tenants={"vip": TenantPolicy(rate=0, burst=3, max_inflight=8)},
        )
        assert ctrl.admit("vip") is None
        assert ctrl.admit("anon") is None
        assert ctrl.admit("anon") == "rate_limit"
        assert ctrl.admit("vip") is None  # vip budget untouched by anon


# ---------------------------------------------------------------------------
# Queueing


class TestBoundedPriorityQueue:
    def test_priority_order_fifo_within(self):
        q = BoundedPriorityQueue(depth=8)
        q.offer("low-a", 10)
        q.offer("high", 1)
        q.offer("low-b", 10)
        assert [q.take() for _ in range(3)] == ["high", "low-a", "low-b"]

    def test_rejects_when_full(self):
        q = BoundedPriorityQueue(depth=2)
        assert q.offer("a") and q.offer("b")
        assert not q.offer("c")
        assert q.rejected == 1 and q.peak_depth == 2

    def test_take_timeout_and_close(self):
        q = BoundedPriorityQueue(depth=2)
        assert q.take(timeout=0.01) is None
        q.close()
        assert not q.offer("late")
        assert q.take() is None


# ---------------------------------------------------------------------------
# Result cache


def _entry(nbytes, generation=0):
    return CachedResult(records=[], count=0, nbytes=nbytes, generation=generation)


class TestResultCache:
    def test_lru_byte_eviction_keeps_newest(self):
        cache = ResultCache(max_bytes=100)
        cache.put("a", _entry(60))
        cache.put("b", _entry(60))  # over budget: a evicted
        assert cache.get("a") is None and cache.get("b") is not None
        assert cache.bytes == 60 and cache.evictions == 1
        cache.put("c", _entry(500))  # alone over budget: still kept
        assert cache.get("c") is not None and len(cache) == 1

    def test_get_refreshes_recency(self):
        cache = ResultCache(max_bytes=100)
        cache.put("a", _entry(40))
        cache.put("b", _entry(40))
        assert cache.get("a") is not None
        cache.put("c", _entry(40))  # b is now LRU
        assert cache.get("b") is None and cache.get("a") is not None

    def test_put_replaces_without_leaking_bytes(self):
        cache = ResultCache(max_bytes=1000)
        cache.put("a", _entry(100))
        cache.put("a", _entry(50))
        assert cache.bytes == 50 and len(cache) == 1

    def test_drop_stale_generations(self):
        cache = ResultCache(max_bytes=1000)
        cache.put("old1", _entry(10, generation=0))
        cache.put("old2", _entry(10, generation=0))
        cache.put("new", _entry(10, generation=1))
        assert cache.drop_stale_generations(1) == 2
        assert cache.get("new") is not None and cache.bytes == 10
        assert cache.snapshot()["invalidations"] == 2


# ---------------------------------------------------------------------------
# Selection-index cache byte accounting (satellite: max_bytes + nbytes)


class _Sized:
    def __init__(self, nbytes):
        self.nbytes = nbytes


class TestIndexCacheBytes:
    def test_max_bytes_evicts_lru(self):
        cache = PartitionIndexCache(capacity=64, max_bytes=100)
        p1, p2 = [1], [2]
        cache.get_or_build(p1, "k", lambda p: _Sized(70))
        cache.get_or_build(p2, "k", lambda p: _Sized(70))
        assert cache.bytes == 70 and cache.evictions == 1
        _, hit = cache.get_or_build(p1, "k", lambda p: _Sized(70))
        assert not hit  # p1 was the evicted one

    def test_newest_survives_even_over_budget(self):
        cache = PartitionIndexCache(capacity=64, max_bytes=10)
        cache.get_or_build([1], "k", lambda p: _Sized(500))
        assert len(cache) == 1 and cache.bytes == 500

    def test_configure_rebounds_in_place(self):
        cache = PartitionIndexCache(capacity=64)
        for i in range(4):
            cache.get_or_build([i], "k", lambda p: _Sized(50))
        assert cache.bytes == 200
        cache.configure(max_bytes=100)
        assert cache.bytes <= 100 and cache.evictions == 2
        assert cache.max_bytes == 100 and cache.capacity == 64

    def test_real_indexes_report_nbytes(self):
        events = make_events(200)
        table = BoxTable.from_instances(events)
        mins, maxs = table.coords()
        tree = PackedRTree(mins, maxs, capacity=16)
        scalar = RTree.build(((e.st_box(), e) for e in events), capacity=16)
        assert table.nbytes > 0
        assert tree.nbytes > 0
        assert scalar.nbytes >= 200 * 150  # ≥ per-entry cost floor


# ---------------------------------------------------------------------------
# Protocol


class TestProtocol:
    def test_parse_request_errors(self):
        with pytest.raises(ValueError):
            parse_request("{not json")
        with pytest.raises(ValueError):
            parse_request("[1,2]")
        with pytest.raises(ValueError):
            parse_request('{"no": "op"}')

    def test_parse_query_range(self):
        spatial, temporal = parse_query_range(
            {"bbox": [0, 1, 2, 3], "time": [10, 20]}
        )
        assert spatial == Envelope(0, 1, 2, 3)
        assert (temporal.start, temporal.end) == (10.0, 20.0)
        with pytest.raises(ValueError):
            parse_query_range({})
        with pytest.raises(ValueError):
            parse_query_range({"bbox": [1, 2, 3]})
        with pytest.raises(ValueError):
            parse_query_range({"time": [1]})

    def test_query_cache_key_generation_sensitivity(self):
        spatial = Envelope(0, 0, 5, 5)
        temporal = Duration(0, 100)
        key0 = query_cache_key(spatial, temporal, 0)
        assert query_cache_key(spatial, temporal, 0) == key0
        assert query_cache_key(spatial, temporal, 1) != key0
        assert query_cache_key(Envelope(0, 0, 5, 6), temporal, 0) != key0

    def test_result_document_matches_records_document(self):
        events = make_events(20)
        doc = records_document(events)
        import json

        payload = json.loads(doc)
        response = {"count": payload["count"], "records": payload["records"]}
        assert result_document(response) == doc


# ---------------------------------------------------------------------------
# The daemon, end to end


BBOXES = [
    (0.0, 0.0, 4.0, 4.0),
    (2.0, 2.0, 8.0, 8.0),
    (5.0, 1.0, 9.0, 6.0),
    (1.0, 5.0, 6.0, 9.5),
]
WINDOW = (0.0, 60_000.0)


def one_shot_document(directory, bbox, window=WINDOW):
    ctx = EngineContext(default_parallelism=4)
    try:
        selector = Selector(Envelope(*bbox), Duration(*window))
        return records_document(selector.select(ctx, directory).collect())
    finally:
        ctx.stop()


class TestServeDaemon:
    def test_parity_with_one_shot_select(self, tmp_path):
        write_dataset(tmp_path / "ds")
        with running_server(tmp_path / "ds", workers=2) as (_, host, port):
            with ServeClient(host, port) as client:
                for bbox in BBOXES:
                    response = client.query(bbox=bbox, time_range=WINDOW)
                    assert response["status"] == "ok"
                    assert result_document(response) == one_shot_document(
                        tmp_path / "ds", bbox
                    )

    def test_parity_with_cli_select_json(self, tmp_path, capsys):
        write_dataset(tmp_path / "ds")
        bbox = BBOXES[1]
        assert (
            cli_main(
                [
                    "select", str(tmp_path / "ds"),
                    "--bbox", *[str(v) for v in bbox],
                    "--time", *[str(v) for v in WINDOW],
                    "--format", "json",
                ]
            )
            == 0
        )
        cli_doc = capsys.readouterr().out.strip()
        with running_server(tmp_path / "ds", workers=2) as (_, host, port):
            with ServeClient(host, port) as client:
                response = client.query(bbox=bbox, time_range=WINDOW)
        assert result_document(response) == cli_doc

    def test_warm_round_hits_cache_and_is_faster(self, tmp_path):
        write_dataset(tmp_path / "ds", n=4000)
        with running_server(tmp_path / "ds", workers=2) as (server, host, port):
            with ServeClient(host, port) as client:

                def round_trip():
                    latencies = []
                    for bbox in BBOXES:
                        start = time.perf_counter()
                        response = client.query(bbox=bbox, time_range=WINDOW)
                        latencies.append(time.perf_counter() - start)
                        assert response["status"] == "ok"
                    return latencies

                cold = round_trip()
                warm = round_trip()
            snap = server.result_cache.snapshot()
            assert snap["hits"] >= len(BBOXES)
            assert statistics.median(warm) < statistics.median(cold)
            # Warm responses say so.
            assert server.counters["serve_cache_hits"] >= len(BBOXES)

    def test_overloaded_tenant_sheds_others_unaffected(self, tmp_path):
        write_dataset(tmp_path / "ds")
        # rate=0, burst=2: "limited" gets exactly two requests, ever.
        with running_server(
            tmp_path / "ds",
            workers=2,
            tenants={"limited": TenantPolicy(rate=0, burst=2, max_inflight=8)},
        ) as (_, host, port):
            with ServeClient(host, port) as client:
                statuses = [
                    client.query(bbox=BBOXES[0], time_range=WINDOW, tenant="limited")
                    for _ in range(4)
                ]
                assert [r["status"] for r in statuses] == ["ok", "ok", "SHED", "SHED"]
                assert {r["reason"] for r in statuses[2:]} == {"rate_limit"}
                # Another tenant is untouched — and still answers correctly.
                other = client.query(bbox=BBOXES[0], time_range=WINDOW, tenant="ok-team")
                assert other["status"] == "ok"
                assert result_document(other) == one_shot_document(
                    tmp_path / "ds", BBOXES[0]
                )

    def test_queue_full_sheds_explicitly(self, tmp_path):
        write_dataset(tmp_path / "ds", n=200, partitions=2)
        # No workers: admitted requests park in the depth-1 queue forever,
        # so the second concurrent request must shed with queue_full.
        with running_server(
            tmp_path / "ds", workers=0, queue_depth=1, request_timeout=1.0
        ) as (_, host, port):
            first_started = threading.Event()
            results = {}

            def park():
                with ServeClient(host, port) as client:
                    first_started.set()
                    results["first"] = client.query(bbox=BBOXES[0])

            blocker = threading.Thread(target=park)
            blocker.start()
            assert first_started.wait(2.0)
            time.sleep(0.1)  # let the first request reach the queue
            with ServeClient(host, port) as client:
                shed = client.query(bbox=BBOXES[0], tenant="other")
            blocker.join(timeout=5)
            assert shed["status"] == "SHED" and shed["reason"] == "queue_full"
            assert results["first"]["status"] == "error"  # server-side timeout

    def test_max_inflight_sheds(self, tmp_path):
        write_dataset(tmp_path / "ds", n=200, partitions=2)
        with running_server(
            tmp_path / "ds",
            workers=0,
            queue_depth=16,
            request_timeout=1.0,
            tenants={"solo": TenantPolicy(rate=1000, burst=100, max_inflight=1)},
        ) as (_, host, port):
            parked = threading.Event()

            def park():
                with ServeClient(host, port) as client:
                    parked.set()
                    client.query(bbox=BBOXES[0], tenant="solo")

            blocker = threading.Thread(target=park)
            blocker.start()
            assert parked.wait(2.0)
            time.sleep(0.1)
            with ServeClient(host, port) as client:
                shed = client.query(bbox=BBOXES[0], tenant="solo")
            blocker.join(timeout=5)
            assert shed["status"] == "SHED" and shed["reason"] == "max_inflight"

    def test_concurrent_tenants_all_correct(self, tmp_path):
        write_dataset(tmp_path / "ds")
        expected = {bbox: one_shot_document(tmp_path / "ds", bbox) for bbox in BBOXES}
        with running_server(tmp_path / "ds", workers=4) as (_, host, port):
            failures = []

            def hammer(tenant, rounds=4):
                with ServeClient(host, port, tenant=tenant) as client:
                    for i in range(rounds):
                        bbox = BBOXES[i % len(BBOXES)]
                        response = client.query(bbox=bbox, time_range=WINDOW)
                        if response["status"] != "ok":
                            failures.append((tenant, response))
                        elif result_document(response) != expected[bbox]:
                            failures.append((tenant, "mismatch", bbox))

            threads = [
                threading.Thread(target=hammer, args=(f"tenant-{i % 2}",))
                for i in range(8)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=30)
            assert not failures


# ---------------------------------------------------------------------------
# Invalidation on dataset edits (satellite: generation bumps drop caches)


class TestInvalidation:
    def test_append_bumps_generation_and_drops_caches(self, tmp_path):
        write_dataset(tmp_path / "ds", n=400, partitions=4)
        with running_server(tmp_path / "ds", workers=2) as (server, host, port):
            with ServeClient(host, port) as client:
                bbox = (0.0, 0.0, 10.0, 10.0)
                first = client.query(bbox=bbox)
                again = client.query(bbox=bbox)
                assert again["cached"] is True
                index_entries_before = len(selection_cache())
                assert index_entries_before > 0
                # Edit the dataset behind the server's back.
                StDataset(tmp_path / "ds").append(
                    [[Event.of_point(5.0, 5.0, 1_000.0, data="fresh")]]
                )
                after = client.query(bbox=bbox)
                assert after["generation"] == first["generation"] + 1
                assert after["cached"] is False
                assert after["count"] == first["count"] + 1
            assert server.state.invalidations == 1
            assert server.result_cache.snapshot()["invalidations"] >= 1

    def test_rewrite_in_place_bumps_generation(self, tmp_path):
        events = write_dataset(tmp_path / "ds", n=300, partitions=3)
        with running_server(tmp_path / "ds", workers=2) as (server, host, port):
            with ServeClient(host, port) as client:
                bbox = (0.0, 0.0, 10.0, 10.0)
                first = client.query(bbox=bbox)
                # Repartition in place: same records, new layout → new
                # partition identities, new generation.
                StDataset.write(
                    tmp_path / "ds", [events[i::5] for i in range(5)], "event"
                )
                after = client.query(bbox=bbox)
                assert after["generation"] == first["generation"] + 1
                assert after["cached"] is False
                assert after["count"] == first["count"]
                assert result_document(after) != ""  # answered, not errored
            assert server.state.invalidations == 1

    def test_generation_survives_save_load_and_merge(self, tmp_path):
        write_dataset(tmp_path / "ds", n=100, partitions=2)
        meta = DatasetMetadata.load(tmp_path / "ds")
        assert meta.generation == 0
        ds = StDataset(tmp_path / "ds")
        ds.append([[Event.of_point(1.0, 1.0, 10.0, data="a")]])
        assert DatasetMetadata.load(tmp_path / "ds").generation == 1
        ds.append([[Event.of_point(2.0, 2.0, 20.0, data="b")]])
        assert DatasetMetadata.load(tmp_path / "ds").generation == 2

    def test_append_rdd_bumps_generation(self, tmp_path, ctx):
        write_dataset(tmp_path / "ds", n=100, partitions=2)
        ds = StDataset(tmp_path / "ds")
        extra = ctx.parallelize([Event.of_point(3.0, 3.0, 30.0, data="c")], 1)
        ds.append_rdd(extra)
        assert DatasetMetadata.load(tmp_path / "ds").generation == 1

    def test_ingest_invalidates_resident_daemon(self, tmp_path):
        """A resident daemon observes ``ingest()`` edits: generation bumps,
        caches drop, post-ingest queries answer fresh with the new data,
        and the advanced watermark shows up in ping and stats."""
        write_dataset(tmp_path / "ds", n=400, partitions=4)
        with running_server(tmp_path / "ds", workers=2) as (server, host, port):
            with ServeClient(host, port) as client:
                bbox = (0.0, 0.0, 10.0, 10.0)
                first = client.query(bbox=bbox)
                assert client.query(bbox=bbox)["cached"] is True
                assert client.ping()["watermark"] is None
                # Feed two micro-batches behind the server's back.
                ds = StDataset(tmp_path / "ds")
                ds.ingest(
                    [Event.of_point(5.0, 5.0, 1_000.0, data="b1")],
                )
                ds.ingest(
                    [
                        Event.of_point(6.0, 6.0, 2_000.0, data="b2a"),
                        Event.of_point(7.0, 7.0, 3_000.0, data="b2b"),
                    ],
                )
                after = client.query(bbox=bbox)
                assert after["generation"] == first["generation"] + 2
                assert after["cached"] is False
                assert after["count"] == first["count"] + 3
                # The refresh made the advanced watermark resident too.
                assert client.ping()["watermark"] == 3_000.0
                stats = client.stats()
                assert stats["dataset"]["watermark"] == 3_000.0
                assert stats["dataset"]["generation"] == after["generation"]
            assert server.state.invalidations == 1
            assert server.result_cache.snapshot()["invalidations"] >= 1
