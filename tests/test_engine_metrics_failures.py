"""Engine metrics, shuffle accounting, broadcast, and failure injection."""

import pytest

from repro.engine import Broadcast, EngineContext, TaskFailure
from repro.engine.metrics import balance_summary, coefficient_of_variation
from repro.engine.shuffle import hash_partition, stable_hash


@pytest.fixture
def ctx():
    return EngineContext(default_parallelism=4)


class TestStableHash:
    def test_deterministic_across_calls(self):
        assert stable_hash("abc") == stable_hash("abc")
        assert stable_hash((1, "x", 2.5)) == stable_hash((1, "x", 2.5))

    def test_int_passthrough(self):
        assert stable_hash(42) == 42
        assert stable_hash(-1) >= 0  # masked non-negative

    def test_bool_is_int(self):
        assert stable_hash(True) == 1

    def test_partition_in_range(self):
        for key in ["a", "b", 17, (1, 2), 3.5]:
            assert 0 <= hash_partition(key, 7) < 7

    def test_numpy_scalars_bucket_like_python_scalars(self):
        # NumPy scalar reprs changed between 1.x and 2.x ("5" vs
        # "np.int64(5)"); hashing the repr would shuffle the same key to
        # different partitions depending on the installed NumPy.  Scalars
        # must normalize through ``.item()`` first — including inside
        # tuple keys.
        np = pytest.importorskip("numpy")
        assert stable_hash(np.int64(5)) == stable_hash(5)
        assert stable_hash(np.int32(-3)) == stable_hash(-3)
        assert stable_hash(np.float64(2.5)) == stable_hash(2.5)
        assert stable_hash(np.bool_(True)) == stable_hash(True)
        assert stable_hash(np.str_("abc")) == stable_hash("abc")
        assert stable_hash((np.int64(1), "x", np.float64(2.5))) == stable_hash(
            (1, "x", 2.5)
        )
        for key in [np.int64(9), np.float32(1.5), (np.int64(1), np.int64(2))]:
            assert 0 <= hash_partition(key, 7) < 7


class TestShuffleAccounting:
    def test_reduce_by_key_shuffles_less_than_group_by_key(self, ctx):
        data = [(i % 4, 1) for i in range(1000)]
        rdd = ctx.parallelize(data, 8)

        ctx.metrics.reset()
        rdd.reduce_by_key(lambda a, b: a + b).collect()
        reduce_shuffled = ctx.metrics.shuffle_records

        ctx.metrics.reset()
        rdd.group_by_key().collect()
        group_shuffled = ctx.metrics.shuffle_records

        # Map-side combine: at most keys*partitions records cross the wire.
        assert reduce_shuffled <= 4 * 8
        assert group_shuffled == 1000
        assert reduce_shuffled < group_shuffled

    def test_narrow_ops_shuffle_nothing(self, ctx):
        ctx.metrics.reset()
        ctx.parallelize(range(100), 4).map(lambda x: x + 1).filter(bool).collect()
        assert ctx.metrics.shuffle_records == 0
        assert ctx.metrics.shuffle_count == 0

    def test_stage_and_task_counts(self, ctx):
        ctx.metrics.reset()
        ctx.parallelize(range(10), 5).map(lambda x: x).collect()
        assert ctx.metrics.stages == 1
        assert ctx.metrics.task_count == 5

    def test_snapshot_keys(self, ctx):
        snap = ctx.metrics.snapshot()
        assert set(snap) == {
            "tasks", "stages", "records_out", "shuffle_records",
            "shuffles", "broadcasts", "broadcast_records",
            "attempts", "failed_attempts",
        }


class TestBroadcast:
    def test_value_accessible(self, ctx):
        b = ctx.broadcast([1, 2, 3])
        assert b.value == [1, 2, 3]

    def test_metered(self, ctx):
        ctx.metrics.reset()
        ctx.broadcast([1, 2, 3])
        ctx.broadcast(object(), record_count=10)
        assert ctx.metrics.broadcast_count == 2
        assert ctx.metrics.broadcast_records == 13

    def test_unsized_defaults_to_one(self, ctx):
        ctx.metrics.reset()
        ctx.broadcast(42)
        assert ctx.metrics.broadcast_records == 1

    def test_destroy(self):
        b = Broadcast("x")
        b.destroy()
        with pytest.raises(ValueError):
            _ = b.value


class TestFailureInjection:
    def test_transient_failure_retried(self, ctx):
        attempts = {}

        def flaky(partition, attempt):
            attempts.setdefault(partition, 0)
            attempts[partition] += 1
            if partition == 1 and attempt == 1:
                raise RuntimeError("transient fault")

        ctx.task_failure_injector = flaky
        result = ctx.parallelize(range(10), 3).collect()
        assert result == list(range(10))
        assert attempts[1] == 2  # one failure + one successful retry

    def test_permanent_failure_surfaces_task_failure(self, ctx):
        def always_fail(partition, attempt):
            if partition == 0:
                raise RuntimeError("dead executor")

        ctx.task_failure_injector = always_fail
        with pytest.raises(TaskFailure) as exc_info:
            ctx.parallelize(range(10), 2).collect()
        assert exc_info.value.partition == 0
        assert exc_info.value.attempts == ctx.max_task_retries

    def test_retry_metrics_record_attempts(self, ctx):
        def flaky(partition, attempt):
            if attempt == 1:
                raise RuntimeError("always fails once")

        ctx.task_failure_injector = flaky
        ctx.parallelize(range(4), 2).collect()
        assert all(t.attempts == 2 for t in ctx.metrics.tasks)

    def test_retry_overhead_recorded(self, ctx):
        import time as _time

        def flaky(partition, attempt):
            if attempt == 1:
                _time.sleep(0.002)
                raise RuntimeError("first attempt dies")

        ctx.task_failure_injector = flaky
        ctx.parallelize(range(4), 2).collect()
        assert ctx.metrics.failed_attempts == 2
        assert ctx.metrics.retry_seconds > 0.0
        assert ctx.metrics.total_attempts == 4

    def test_permanent_failure_records_failed_task(self, ctx):
        def always_fail(partition, attempt):
            if partition == 0:
                raise RuntimeError("dead executor")

        ctx.task_failure_injector = always_fail
        with pytest.raises(TaskFailure):
            ctx.parallelize(range(10), 2).collect()
        assert len(ctx.metrics.failed_tasks) == 1
        failed = ctx.metrics.failed_tasks[0]
        assert failed.partition == 0
        assert failed.attempts == ctx.max_task_retries
        assert failed.failed_attempts == ctx.max_task_retries
        assert ctx.metrics.failed_attempts >= ctx.max_task_retries


class TestParallelMode:
    def test_parallel_results_match_sequential(self):
        seq = EngineContext(default_parallelism=4, parallel=False)
        par = EngineContext(default_parallelism=4, parallel=True)
        data = [(i % 5, i) for i in range(500)]
        a = seq.parallelize(data, 8).reduce_by_key(lambda x, y: x + y).collect_as_map()
        b = par.parallelize(data, 8).reduce_by_key(lambda x, y: x + y).collect_as_map()
        assert a == b
        par.stop()

    def test_context_manager_stops_pool(self):
        with EngineContext(parallel=True) as ctx:
            ctx.parallelize(range(10), 4).collect()
        assert ctx._pool is None


class TestBalanceMetrics:
    def test_cv_uniform_is_zero(self):
        assert coefficient_of_variation([10, 10, 10]) == 0.0

    def test_cv_skewed_positive(self):
        assert coefficient_of_variation([0, 0, 30]) > 1.0

    def test_cv_degenerate(self):
        assert coefficient_of_variation([]) == 0.0
        assert coefficient_of_variation([0, 0]) == 0.0
        assert coefficient_of_variation([5]) == 0.0

    def test_balance_summary(self):
        s = balance_summary([1, 2, 3])
        assert s["partitions"] == 3
        assert s["min"] == 1 and s["max"] == 3
        assert s["mean"] == pytest.approx(2.0)


class TestContextValidation:
    def test_invalid_parallelism(self):
        with pytest.raises(ValueError):
            EngineContext(default_parallelism=0)

    def test_invalid_retries(self):
        with pytest.raises(ValueError):
            EngineContext(max_task_retries=0)
