"""Tests for the paper-extension features: Sm↔Ts collapses, the keyed
partitioner generalization, and road-network raster structures."""

import pytest

from repro.core.converters import Sm2TsConverter, Ts2SmConverter
from repro.core.structures import RasterStructure
from repro.engine import EngineContext
from repro.geometry import Envelope
from repro.instances import SpatialMap, TimeSeries
from repro.mapmatching import RoadNetwork
from repro.partitioners import KeyedSTRPartitioner, TSTRPartitioner
from repro.temporal import Duration
from tests.conftest import make_events


@pytest.fixture
def ctx():
    return EngineContext(default_parallelism=2)


class TestSmTsCollapses:
    def test_sm_to_single_slot_ts(self, ctx):
        sm = SpatialMap.of_geometries(
            Envelope(0, 0, 2, 1).split(2, 1), temporal=Duration(0, 100)
        ).with_cell_values([3, 4])
        ts = Sm2TsConverter(lambda a, b: a + b).convert(ctx.parallelize([sm], 1)).first()
        assert isinstance(ts, TimeSeries)
        assert ts.n_cells == 1
        assert ts.cell_values() == [7]
        assert ts.entries[0].temporal == Duration(0, 100)

    def test_ts_to_single_cell_sm(self, ctx):
        ts = TimeSeries.regular(Duration(0, 20), 10.0).with_cell_values([1, 9])
        area = Envelope(0, 0, 5, 5)
        sm = (
            Ts2SmConverter(lambda a, b: a + b, spatial=area)
            .convert(ctx.parallelize([ts], 1))
            .first()
        )
        assert isinstance(sm, SpatialMap)
        assert sm.n_cells == 1
        assert sm.cell_values() == [10]
        assert sm.entries[0].spatial == area
        assert sm.entries[0].temporal == Duration(0, 20)

    def test_ts_to_sm_default_geometry_from_entries(self, ctx):
        ts = TimeSeries.regular(Duration(0, 10), 5.0).with_cell_values([1, 1])
        sm = Ts2SmConverter(lambda a, b: a + b).convert(ctx.parallelize([ts], 1)).first()
        # Placeholder point geometry collapses to a degenerate envelope.
        assert sm.entries[0].spatial.area == 0.0

    def test_roundtrip_sum_preserved(self, ctx):
        sm = SpatialMap.of_geometries(
            Envelope(0, 0, 3, 1).split(3, 1), temporal=Duration(0, 50)
        ).with_cell_values([1, 2, 3])
        ts = Sm2TsConverter(lambda a, b: a + b).convert(ctx.parallelize([sm], 1))
        back = Ts2SmConverter(lambda a, b: a + b).convert(ts).first()
        assert back.cell_values() == [6]


class TestKeyedSTRPartitioner:
    def test_temporal_key_matches_tstr_partition_counts(self):
        events = make_events(300, seed=201)
        keyed = KeyedSTRPartitioner(lambda i: i.temporal_extent.center, 4, 4)
        tstr = TSTRPartitioner(4, 4)
        keyed.fit(events)
        tstr.fit(events)
        assert keyed.num_partitions == tstr.num_partitions
        # Same slicing criterion → identical assignment.
        assert [keyed.assign(e) for e in events] == [tstr.assign(e) for e in events]

    def test_custom_attribute_key(self):
        events = make_events(200, seed=202)
        # Partition by record id parity-ish key: id mod 7.
        keyed = KeyedSTRPartitioner(lambda i: float(i.data % 7), 7, 2)
        keyed.fit(events)
        for ev in events:
            assert 0 <= keyed.assign(ev) < keyed.num_partitions

    def test_key_slices_are_pure(self):
        """All records in one partition share a key-quantile slice."""
        events = make_events(300, seed=203)
        keyed = KeyedSTRPartitioner(lambda i: float(i.data % 5), 5, 3)
        keyed.fit(events)
        slice_of_partition = {}
        for ev in events:
            pid = keyed.assign(ev)
            key_slice = ev.data % 5
            slice_of_partition.setdefault(pid, key_slice)
            assert slice_of_partition[pid] == key_slice

    def test_assign_all_within_single_slice(self):
        events = make_events(100, seed=204)
        keyed = KeyedSTRPartitioner(lambda i: i.temporal_extent.center, 3, 3)
        keyed.fit(events)
        for ev in events[:20]:
            pids = keyed.assign_all(ev)
            assert keyed.assign(ev) in pids

    def test_execution(self, ctx):
        events = make_events(200, seed=205)
        keyed = KeyedSTRPartitioner(lambda i: i.temporal_extent.center, 3, 3)
        out = keyed.partition(ctx.parallelize(events, 4))
        assert out.count() == 200

    def test_validation(self):
        with pytest.raises(ValueError):
            KeyedSTRPartitioner(lambda i: 0.0, 0, 3)
        p = KeyedSTRPartitioner(lambda i: 0.0, 2, 2)
        with pytest.raises(ValueError):
            p.fit([])


class TestRoadNetworkStructure:
    def test_cells_per_segment_and_slot(self):
        net = RoadNetwork.grid(0.0, 0.0, 2, 2, spacing_degrees=0.01)
        slots = Duration(0, 7200).split(2)
        structure = RasterStructure.from_road_network(net, slots)
        assert structure.n_cells == net.n_segments * 2

    def test_buffered_cells_are_envelopes(self):
        net = RoadNetwork.grid(0.0, 0.0, 2, 2, spacing_degrees=0.01)
        structure = RasterStructure.from_road_network(
            net, [Duration(0, 3600)], buffer_degrees=0.005
        )
        geom, _ = structure.cells[0]
        assert isinstance(geom, Envelope)

    def test_unbuffered_cells_are_linestrings(self):
        from repro.geometry import LineString

        net = RoadNetwork.grid(0.0, 0.0, 2, 2, spacing_degrees=0.01)
        structure = RasterStructure.from_road_network(net, [Duration(0, 3600)])
        geom, _ = structure.cells[0]
        assert isinstance(geom, LineString)
