"""Randomized cross-system selection parity.

For any ST range query, all three systems must select exactly the same
records — ST4ML's metadata-pruned indexed path, GeoMesa-like's XZ2 block
scan, and GeoSpark-like's full scan.  This is the precondition for every
performance comparison being apples-to-apples.
"""

import pytest

from repro.baselines import GeoMesaLike, GeoSparkLike
from repro.core import Selector
from repro.datasets import NYC_BBOX, PORTO_BBOX, generate_nyc_events, generate_porto_trajectories
from repro.datasets.common import EPOCH_2013
from repro.datasets.porto import PORTO_START
from repro.engine import EngineContext
from repro.partitioners import TSTRPartitioner
from repro.stio import save_dataset
from repro.workloads import random_queries


@pytest.fixture(scope="module")
def ctx():
    return EngineContext(default_parallelism=4)


@pytest.fixture(scope="module")
def stores(tmp_path_factory):
    root = tmp_path_factory.mktemp("parity")
    ctx = EngineContext(default_parallelism=4)
    events = generate_nyc_events(1_200, seed=401, days=10)
    trajs = generate_porto_trajectories(150, seed=402, days=10)
    save_dataset(root / "ev_st", events, "event", partitioner=TSTRPartitioner(2, 3), ctx=ctx)
    save_dataset(root / "tr_st", trajs, "trajectory", partitioner=TSTRPartitioner(2, 3), ctx=ctx)
    GeoSparkLike.ingest(events, root / "ev_gs")
    GeoSparkLike.ingest(trajs, root / "tr_gs")
    GeoMesaLike.ingest(events, root / "ev_gm", block_records=128)
    GeoMesaLike.ingest(trajs, root / "tr_gm", block_records=32)
    return root, events, trajs


def ids_of(rdd):
    return sorted(repr(x.data).strip("'\"").strip("'") for x in rdd.collect())


def canonical_ids(rdd):
    out = []
    for inst in rdd.collect():
        d = inst.data
        if isinstance(d, str) and d and (d[0] in "'\"" or d.lstrip("-").isdigit()):
            out.append(d if not d.lstrip("-").isdigit() else d)
        else:
            out.append(repr(d))
    return sorted(out)


EVENT_QUERIES = random_queries(NYC_BBOX, EPOCH_2013, 5, seed=41, s_ratio=0.4, t_ratio=0.3, days=10)
TRAJ_QUERIES = random_queries(PORTO_BBOX, PORTO_START, 5, seed=42, s_ratio=0.4, t_ratio=0.3, days=10)


class TestEventParity:
    @pytest.mark.parametrize("query_index", range(len(EVENT_QUERIES)))
    def test_three_systems_agree(self, ctx, stores, query_index):
        root, events, _ = stores
        q = EVENT_QUERIES[query_index]
        st = Selector(q.spatial, q.temporal).select(ctx, root / "ev_st")
        gm = GeoMesaLike().select(ctx, root / "ev_gm", q.spatial, q.temporal)
        gs = GeoSparkLike().select(ctx, root / "ev_gs", q.spatial, q.temporal)
        expected = sorted(
            repr(ev.data) for ev in events if ev.intersects(q.spatial, q.temporal)
        )
        assert canonical_ids(st) == expected
        assert canonical_ids(gm) == expected
        assert canonical_ids(gs) == expected


class TestTrajectoryParity:
    @pytest.mark.parametrize("query_index", range(len(TRAJ_QUERIES)))
    def test_three_systems_agree(self, ctx, stores, query_index):
        root, _, trajs = stores
        q = TRAJ_QUERIES[query_index]
        st = Selector(q.spatial, q.temporal).select(ctx, root / "tr_st")
        gm = GeoMesaLike().select(ctx, root / "tr_gm", q.spatial, q.temporal)
        gs = GeoSparkLike().select(ctx, root / "tr_gs", q.spatial, q.temporal)
        expected = sorted(
            repr(t.data) for t in trajs if t.intersects(q.spatial, q.temporal)
        )
        assert canonical_ids(st) == expected
        assert canonical_ids(gm) == expected
        assert canonical_ids(gs) == expected
