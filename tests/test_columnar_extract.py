"""Scalar-vs-columnar extraction parity and the worker-side tree reduce.

The columnar extraction contract mirrors the selection/conversion one:
*bit-for-bit agreement* with the scalar ``local``/``merge``/``finalize``
path.  Both paths share a single deterministic reduce topology
(per-partition left fold, then balanced adjacent pairing), so the
comparisons below use plain ``==`` — no tolerances — over randomized
inputs, empty cells, single partitions, duplicate-mode boundary replicas,
partial scalar fallbacks (demotion), and all three execution backends.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.columnar.aggregate import CellTable, CountSpec, scatter_sum
from repro.core import Selector
from repro.core.converters.singular_to_collective import (
    Event2RasterConverter,
    Event2SmConverter,
    Event2TsConverter,
    Traj2RasterConverter,
    Traj2SmConverter,
    Traj2TsConverter,
)
from repro.core.extractors.raster import (
    RasterFlowExtractor,
    RasterSpeedExtractor,
    RasterTransitExtractor,
)
from repro.core.extractors.spatialmap import SmFlowExtractor, SmSpeedExtractor
from repro.core.extractors.timeseries import TsFlowExtractor, TsSpeedExtractor
from repro.engine import EngineContext
from repro.geometry import Envelope, Point
from repro.instances import Event, Trajectory
from repro.instances.base import Entry
from repro.obs.tracer import Tracer, installed
from repro.partitioners import TSTRPartitioner
from repro.temporal import Duration

from .conftest import make_events, make_trajectories

ALL_BACKENDS = ["sequential", "thread", "process"]

EXTENT = Envelope(0.0, 0.0, 10.0, 10.0)
WINDOW = Duration(0.0, 86_400.0)


def _structures():
    from repro.core.structures import (
        RasterStructure,
        SpatialMapStructure,
        TimeSeriesStructure,
    )

    sm = SpatialMapStructure.regular(EXTENT, 5, 5)
    ts = TimeSeriesStructure.regular(WINDOW, 24)
    raster = RasterStructure.regular(EXTENT, WINDOW, 4, 4, 12)
    return sm, ts, raster


def _both_paths(ctx, converted, extractor):
    """(scalar features, columnar features) off the same converted RDD."""
    materialized = ctx.from_partitions(converted._collect_partitions())
    extractor.use_columnar = False
    scalar = extractor.extract(materialized).cell_values()
    extractor.use_columnar = True
    columnar = extractor.extract(materialized).cell_values()
    return scalar, columnar


def _event_cases(events):
    sm, ts, raster = _structures()
    return [
        (Event2SmConverter(sm), SmFlowExtractor()),
        (Event2TsConverter(ts), TsFlowExtractor()),
        (Event2RasterConverter(raster), RasterFlowExtractor()),
    ]


def _trajectory_cases():
    sm, ts, raster = _structures()
    return [
        (Traj2SmConverter(sm), SmFlowExtractor()),
        (Traj2SmConverter(sm), SmSpeedExtractor()),
        (Traj2SmConverter(sm), SmSpeedExtractor(unit="ms")),
        (Traj2TsConverter(ts), TsFlowExtractor()),
        (Traj2TsConverter(ts), TsSpeedExtractor()),
        (Traj2RasterConverter(raster), RasterSpeedExtractor()),
        (Traj2RasterConverter(raster), RasterTransitExtractor()),
    ]


class TestExtractionParity:
    """Property-based scalar/columnar agreement per extractor family."""

    @given(
        n=st.integers(0, 80),
        seed=st.integers(0, 2**20),
        parts=st.integers(1, 6),
    )
    @settings(max_examples=25, deadline=None)
    def test_event_families(self, n, seed, parts):
        events = make_events(n, seed=seed)
        ctx = EngineContext(default_parallelism=parts, backend="sequential")
        for converter, extractor in _event_cases(events):
            converted = converter.convert(ctx.parallelize(events, parts))
            scalar, columnar = _both_paths(ctx, converted, extractor)
            assert columnar == scalar

    @given(
        n=st.integers(1, 25),
        seed=st.integers(0, 2**20),
        parts=st.integers(1, 6),
    )
    @settings(max_examples=25, deadline=None)
    def test_trajectory_families(self, n, seed, parts):
        trajectories = make_trajectories(n, seed=seed)
        ctx = EngineContext(default_parallelism=parts, backend="sequential")
        for converter, extractor in _trajectory_cases():
            converted = converter.convert(ctx.parallelize(trajectories, parts))
            scalar, columnar = _both_paths(ctx, converted, extractor)
            assert columnar == scalar

    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_all_backends(self, backend):
        events = make_events(240)
        trajectories = make_trajectories(30)
        ctx = EngineContext(default_parallelism=4, backend=backend)
        try:
            for converter, extractor in _event_cases(events):
                converted = converter.convert(ctx.parallelize(events, 4))
                scalar, columnar = _both_paths(ctx, converted, extractor)
                assert columnar == scalar
            for converter, extractor in _trajectory_cases():
                converted = converter.convert(ctx.parallelize(trajectories, 4))
                scalar, columnar = _both_paths(ctx, converted, extractor)
                assert columnar == scalar
        finally:
            ctx.backend.stop()

    def test_empty_cells_and_single_partition(self):
        # Events clustered in one corner: most cells stay empty.
        events = make_events(40, extent=1.5, t_extent=3_600.0)
        ctx = EngineContext(default_parallelism=1, backend="sequential")
        for converter, extractor in _event_cases(events):
            converted = converter.convert(ctx.parallelize(events, 1))
            scalar, columnar = _both_paths(ctx, converted, extractor)
            assert columnar == scalar
        sm, _, _ = _structures()
        converted = Traj2SmConverter(sm).convert(ctx.parallelize([], 1))
        extractor = SmSpeedExtractor()
        scalar, columnar = _both_paths(ctx, converted, extractor)
        assert columnar == scalar
        assert all(v is None for v in columnar)  # no trajectories anywhere

    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_duplicate_mode_boundary_replicas(self, backend):
        """select(duplicate=True) → convert → extract, both paths."""
        events = make_events(300)
        events.append(Event.of_point(6.0, 6.0, 60_000.0, data=9001))
        sm, _, _ = _structures()
        ctx = EngineContext(default_parallelism=4, backend=backend)
        try:
            selector = Selector(
                spatial=Envelope(2.0, 2.0, 6.0, 6.0),
                temporal=Duration(10_000.0, 60_000.0),
                partitioner=TSTRPartitioner(2, 4),
                duplicate=True,
            )
            selected = selector.select(ctx, ctx.parallelize(events, 4))
            converted = Event2SmConverter(sm).convert(selected)
            scalar, columnar = _both_paths(ctx, converted, SmFlowExtractor())
            assert columnar == scalar
            assert sum(scalar) > 0
        finally:
            ctx.backend.stop()

    def test_air_quality_field_means(self):
        from repro.apps.air_road import AirQualityExtractor
        from repro.core.structures import RasterStructure

        rng_events = []
        fields = ("pm25", "pm10", "no2")
        for i, ev in enumerate(make_events(120)):
            # Rebuild each event with a per-field reading dict; every event
            # carries a different subset so merge paths with missing
            # fields are exercised.
            readings = {f: (i % 7) + k * 0.125 for k, f in enumerate(fields) if (i + k) % 4}
            entry = ev.entries[0]
            rng_events.append(Event(entry.spatial, entry.temporal, readings, data=i))
        raster = RasterStructure.regular(EXTENT, WINDOW, 3, 3, 4)
        ctx = EngineContext(default_parallelism=3, backend="sequential")
        converted = Event2RasterConverter(raster).convert(ctx.parallelize(rng_events, 3))
        scalar, columnar = _both_paths(ctx, converted, AirQualityExtractor())
        assert columnar == scalar
        assert any(v for v in scalar)


class TestScalarFallbackAndDemotion:
    """Partitions the spec cannot vectorize demote exactly, not approximately."""

    @staticmethod
    def _interval_trajectory(offset: float):
        # Interval-valued entry durations: PortionSpeedSpec.build returns
        # None for these, forcing the partition onto the scalar path.
        entries = [
            Entry(Point(1.0 + offset, 1.0), Duration(1_000.0 * k, 1_000.0 * k + 50.0), None)
            for k in range(1, 6)
        ]
        return Trajectory(entries, data=f"interval-{offset}")

    @pytest.mark.parametrize("parts", [1, 3])
    def test_interval_trajectories_fall_back(self, parts):
        _, ts, _ = _structures()
        trajectories = [self._interval_trajectory(0.1 * i) for i in range(4)]
        ctx = EngineContext(default_parallelism=parts, backend="sequential")
        converted = Traj2TsConverter(ts).convert(ctx.parallelize(trajectories, parts))
        scalar, columnar = _both_paths(ctx, converted, TsSpeedExtractor())
        assert columnar == scalar

    def test_mixed_partitions_demote(self):
        # Partition 0 vectorizes, partition 1 cannot: the tree merge must
        # demote the CellTable side and still match the scalar result.
        _, ts, _ = _structures()
        vectorizable = make_trajectories(8, seed=3)
        fallback = [self._interval_trajectory(0.2 * i) for i in range(3)]
        ctx = EngineContext(default_parallelism=2, backend="sequential")
        converted = Traj2TsConverter(ts).convert(
            ctx.from_partitions([vectorizable, fallback])
        )
        scalar, columnar = _both_paths(ctx, converted, TsSpeedExtractor())
        assert columnar == scalar


class TestTreeReduce:
    def test_matches_reduce_and_is_depth_invariant(self):
        ctx = EngineContext(default_parallelism=7, backend="sequential")
        rdd = ctx.parallelize(list(range(100)), 7)
        expected = rdd.reduce(lambda a, b: a + b)
        for depth in (0, 1, 2, 5):
            assert rdd.tree_reduce(lambda a, b: a + b, depth=depth) == expected

    def test_depth_invariant_for_non_associative_f(self):
        # The pairing is fixed; only *where* pairs merge moves with depth.
        ctx = EngineContext(default_parallelism=8, backend="sequential")
        rdd = ctx.parallelize([float(i + 1) for i in range(64)], 8)
        f = lambda a, b: a / 2.0 + b  # noqa: E731 - deliberately non-associative
        results = {rdd.tree_reduce(f, depth=d) for d in range(5)}
        assert len(results) == 1

    def test_skips_empty_partitions_and_raises_on_empty(self):
        ctx = EngineContext(default_parallelism=4, backend="sequential")
        rdd = ctx.from_partitions([[], [1, 2], [], [3]])
        assert rdd.tree_reduce(lambda a, b: a + b) == 6
        empty = ctx.from_partitions([[], [], []])
        with pytest.raises(ValueError, match="empty"):
            empty.tree_reduce(lambda a, b: a + b)

    def test_stats_report_topology(self):
        ctx = EngineContext(default_parallelism=5, backend="sequential")
        rdd = ctx.parallelize(list(range(50)), 5)
        stats: dict = {}
        rdd.tree_reduce(lambda a, b: a + b, depth=2, stats=stats)
        assert stats["partials"] == 5
        assert stats["rounds"] == 3  # 5 -> 3 -> 2 -> 1
        assert 0 < stats["stage_rounds"] <= 2
        driver_only: dict = {}
        rdd.tree_reduce(lambda a, b: a + b, depth=0, stats=driver_only)
        assert driver_only["stage_rounds"] == 0
        assert driver_only["rounds"] == 3

    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_backends_agree(self, backend):
        ctx = EngineContext(default_parallelism=6, backend=backend)
        try:
            rdd = ctx.parallelize(list(range(1, 200)), 6)
            assert rdd.tree_reduce(lambda a, b: a + b) == sum(range(1, 200))
        finally:
            ctx.backend.stop()

    def test_tree_aggregate_matches_aggregate(self):
        ctx = EngineContext(default_parallelism=5, backend="sequential")
        rdd = ctx.parallelize(list(range(40)), 5)
        expected = rdd.aggregate(
            (0, 0), lambda acc, x: (acc[0] + x, acc[1] + 1), lambda a, b: (a[0] + b[0], a[1] + b[1])
        )
        for depth in (0, 2):
            got = rdd.tree_aggregate(
                (0, 0),
                lambda acc, x: (acc[0] + x, acc[1] + 1),
                lambda a, b: (a[0] + b[0], a[1] + b[1]),
                depth=depth,
            )
            assert got == expected

    def test_tree_aggregate_empty_returns_zero_copy(self):
        ctx = EngineContext(default_parallelism=3, backend="sequential")
        zero = [0]
        rdd = ctx.from_partitions([[], []])
        result = rdd.tree_aggregate(zero, lambda acc, x: acc, lambda a, b: a)
        assert result == [0] and result is not zero

    def test_rejects_negative_depth(self):
        ctx = EngineContext(default_parallelism=2, backend="sequential")
        rdd = ctx.parallelize([1, 2], 2)
        with pytest.raises(ValueError, match="depth"):
            rdd.tree_reduce(lambda a, b: a + b, depth=-1)


class TestObsCounters:
    def test_extraction_span_carries_reduce_counters(self):
        events = make_events(200)
        sm, _, _ = _structures()
        for use_columnar in (True, False):
            tracer = Tracer()
            ctx = EngineContext(
                default_parallelism=4, backend="sequential", tracer=tracer
            )
            converted = Event2SmConverter(sm).convert(ctx.parallelize(events, 4))
            extractor = SmFlowExtractor()
            extractor.use_columnar = use_columnar
            extractor.extract(ctx.from_partitions(converted._collect_partitions()))
            counters = tracer.counters
            assert counters["extract_partials_merged"] == 4
            assert counters["extract_cells_aggregated"] == 4 * sm.n_cells
            assert counters["extract_tree_depth"] == 2  # 4 -> 2 -> 1
            span = next(s for s in tracer.spans if s.name == "Extraction")
            assert span.args["columnar"] is use_columnar
            assert span.args["partials_merged"] == 4

    def test_process_backend_reports_oob_bytes(self):
        # ``stage_oob_bytes`` is metered against the *installed* tracer
        # (the stage serializer has no context handle), so install one.
        events = make_events(200)
        sm, _, _ = _structures()
        tracer = Tracer()
        ctx = EngineContext(default_parallelism=4, backend="process")
        try:
            with installed(tracer):
                converted = Event2SmConverter(sm).convert(ctx.parallelize(events, 4))
                SmFlowExtractor().extract(
                    ctx.from_partitions(converted._collect_partitions())
                )
            span = next(s for s in tracer.spans if s.name == "Extraction")
            assert span.args["reduce_oob_bytes"] > 0
        finally:
            ctx.backend.stop()


class TestCellTable:
    def test_merge_validates_shape_and_kind(self):
        pytest.importorskip("numpy")
        import numpy as np

        a = CellTable(2, {"c": np.zeros(2)}, {"c": "sum"}, "TimeSeries")
        with pytest.raises(ValueError, match="cell counts"):
            a.merge(CellTable(3, {"c": np.zeros(3)}, {"c": "sum"}, "TimeSeries"))
        with pytest.raises(TypeError, match="same instance type"):
            a.merge(CellTable(2, {"c": np.zeros(2)}, {"c": "sum"}, "Raster"))
        with pytest.raises(ValueError, match="combine op"):
            CellTable(2, {"c": np.zeros(2)}, {"c": "median"}, "TimeSeries")

    def test_merge_ops_and_disjoint_columns(self):
        pytest.importorskip("numpy")
        import numpy as np

        a = CellTable(
            2,
            {"s": np.array([1.0, 2.0]), "lo": np.array([5.0, 1.0])},
            {"s": "sum", "lo": "min"},
            "T",
            rows=2,
        )
        b = CellTable(
            2,
            {"s": np.array([10.0, 20.0]), "hi": np.array([7.0, 2.0])},
            {"s": "sum", "hi": "max"},
            "T",
            rows=3,
        )
        merged = a.merge(b)
        assert merged.columns["s"].tolist() == [11.0, 22.0]
        assert merged.columns["lo"].tolist() == [5.0, 1.0]
        assert merged.columns["hi"].tolist() == [7.0, 2.0]
        assert merged.rows == 5 and merged.partials == 2
        assert merged.nbytes == 3 * 2 * 8

    def test_scatter_sum_is_sequential_in_input_order(self):
        pytest.importorskip("numpy")
        import numpy as np

        ids = np.array([0, 1, 0, 0, 1])
        weights = [0.1, 2.5, 0.2, 0.3, 1e-17]
        out = scatter_sum(ids, weights, 3)
        assert out[0] == 0.0 + 0.1 + 0.2 + 0.3  # exact left-fold semantics
        assert out[1] == 0.0 + 2.5 + 1e-17
        assert out[2] == 0.0

    def test_count_spec_round_trip(self):
        pytest.importorskip("numpy")
        from repro.core.structures import TimeSeriesStructure

        ts = TimeSeriesStructure.regular(Duration(0.0, 100.0), 4)
        instance = ts.empty_instance().with_cell_values([[1], [], [2, 3], []])
        spec = CountSpec()
        table = spec.build(instance)
        assert spec.finalize(table) == [1, 0, 2, 0]
        assert spec.partials(table) == [1, 0, 2, 0]
        assert table.rows == 3
