"""Distance / projection unit tests."""

import math

import pytest

from repro.geometry.distance import (
    EARTH_RADIUS_METERS,
    METERS_PER_DEGREE_LAT,
    euclidean_distance,
    haversine_distance,
    meters_per_degree_lon,
    point_segment_distance,
    project_point_to_segment,
    segments_intersect,
)


class TestHaversine:
    def test_zero_distance(self):
        assert haversine_distance(10, 20, 10, 20) == 0.0

    def test_one_degree_latitude(self):
        d = haversine_distance(0, 0, 0, 1)
        assert d == pytest.approx(METERS_PER_DEGREE_LAT, rel=1e-6)

    def test_equator_one_degree_longitude(self):
        d = haversine_distance(0, 0, 1, 0)
        assert d == pytest.approx(METERS_PER_DEGREE_LAT, rel=1e-6)

    def test_longitude_shrinks_with_latitude(self):
        at_equator = haversine_distance(0, 0, 1, 0)
        at_60 = haversine_distance(0, 60, 1, 60)
        assert at_60 == pytest.approx(at_equator * 0.5, rel=1e-2)

    def test_antipodal_is_half_circumference(self):
        d = haversine_distance(0, 0, 180, 0)
        assert d == pytest.approx(math.pi * EARTH_RADIUS_METERS, rel=1e-9)

    def test_symmetry(self):
        assert haversine_distance(1, 2, 3, 4) == pytest.approx(
            haversine_distance(3, 4, 1, 2)
        )


class TestProjection:
    def test_projection_inside_segment(self):
        qx, qy, t = project_point_to_segment(5, 3, 0, 0, 10, 0)
        assert (qx, qy) == (5, 0)
        assert t == 0.5

    def test_projection_clamped_to_endpoint(self):
        qx, qy, t = project_point_to_segment(-5, 3, 0, 0, 10, 0)
        assert (qx, qy) == (0, 0)
        assert t == 0.0

    def test_degenerate_segment(self):
        qx, qy, t = project_point_to_segment(3, 4, 1, 1, 1, 1)
        assert (qx, qy, t) == (1, 1, 0.0)

    def test_point_segment_distance(self):
        assert point_segment_distance(5, 3, 0, 0, 10, 0) == 3.0
        assert point_segment_distance(13, 4, 0, 0, 10, 0) == 5.0

    def test_euclidean(self):
        assert euclidean_distance(0, 0, 3, 4) == 5.0

    def test_meters_per_degree_lon_at_poles(self):
        assert meters_per_degree_lon(90) == pytest.approx(0.0, abs=1e-6)


class TestSegmentsIntersect:
    def test_crossing(self):
        assert segments_intersect((0, 0), (2, 2), (0, 2), (2, 0))

    def test_parallel_disjoint(self):
        assert not segments_intersect((0, 0), (1, 0), (0, 1), (1, 1))

    def test_collinear_overlapping(self):
        assert segments_intersect((0, 0), (2, 0), (1, 0), (3, 0))

    def test_collinear_disjoint(self):
        assert not segments_intersect((0, 0), (1, 0), (2, 0), (3, 0))

    def test_endpoint_touch(self):
        assert segments_intersect((0, 0), (1, 1), (1, 1), (2, 0))

    def test_t_junction(self):
        assert segments_intersect((0, 0), (2, 0), (1, -1), (1, 0))
