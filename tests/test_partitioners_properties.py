"""Property-based tests on partitioners and their quality metrics."""

from collections import Counter

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.instances import Event
from repro.partitioners import (
    HashPartitioner,
    STRPartitioner,
    TSTRPartitioner,
    evaluate_partitioning,
    load_cv,
    load_ov,
)

coord = st.floats(min_value=-50, max_value=50, allow_nan=False)
timestamp = st.floats(min_value=0, max_value=1e5, allow_nan=False)


@st.composite
def event_sets(draw):
    n = draw(st.integers(10, 80))
    return [
        Event.of_point(draw(coord), draw(coord), draw(timestamp), data=i)
        for i in range(n)
    ]


class TestPartitionerProperties:
    @given(event_sets(), st.integers(2, 5), st.integers(2, 5))
    @settings(max_examples=40, deadline=None)
    def test_tstr_total_assignment(self, events, gt, gs):
        p = TSTRPartitioner(gt, gs)
        p.fit(events)
        counts = Counter(p.assign(ev) for ev in events)
        assert sum(counts.values()) == len(events)
        assert all(0 <= pid < p.num_partitions for pid in counts)

    @given(event_sets(), st.integers(2, 16))
    @settings(max_examples=40, deadline=None)
    def test_str_total_assignment(self, events, n):
        p = STRPartitioner(n)
        p.fit(events)
        for ev in events:
            assert 0 <= p.assign(ev) < p.num_partitions

    @given(event_sets(), st.integers(2, 5), st.integers(2, 5))
    @settings(max_examples=40, deadline=None)
    def test_tstr_assign_all_superset_of_assign(self, events, gt, gs):
        p = TSTRPartitioner(gt, gs)
        p.fit(events)
        for ev in events:
            all_pids = p.assign_all(ev)
            assert p.assign(ev) in all_pids
            # Point events overlap exactly the partitions containing them;
            # at least one, and boundary points at most a handful.
            assert 1 <= len(all_pids) <= 8

    @given(event_sets(), st.integers(2, 5), st.integers(2, 5))
    @settings(max_examples=30, deadline=None)
    def test_tstr_boundary_consistency(self, events, gt, gs):
        """assign(x) always lands in a partition whose boundary contains x."""
        p = TSTRPartitioner(gt, gs)
        p.fit(events)
        bounds = p.boundaries()
        for ev in events:
            pid = p.assign(ev)
            assert bounds[pid].intersects(ev.st_box())


class TestMetricsProperties:
    @given(st.lists(st.integers(0, 100), min_size=1, max_size=20))
    def test_cv_nonnegative(self, sizes):
        assert load_cv(sizes) >= 0.0

    @given(st.integers(1, 50), st.integers(1, 10))
    def test_cv_zero_for_uniform(self, size, n):
        assert load_cv([size] * n) == 0.0

    @given(event_sets())
    @settings(max_examples=30, deadline=None)
    def test_ov_single_partition_is_at_most_one(self, events):
        assert load_ov([events]) <= 1.0 + 1e-9

    @given(event_sets())
    @settings(max_examples=30, deadline=None)
    def test_ov_hash_layout_at_least_disjoint_layout(self, events):
        """Random scattering can never beat ST-disjoint placement on OV."""
        if len(events) < 20:
            return
        hasher = HashPartitioner(4)
        hasher.fit([])
        hash_parts = [[] for _ in range(4)]
        for ev in events:
            hash_parts[hasher.assign(ev)].append(ev)

        tstr = TSTRPartitioner(2, 2)
        tstr.fit(events)
        tstr_parts = [[] for _ in range(tstr.num_partitions)]
        for ev in events:
            tstr_parts[tstr.assign(ev)].append(ev)

        assert load_ov(hash_parts) >= load_ov(tstr_parts) - 1e-9

    def test_evaluate_partitioning_shape(self):
        events = [Event.of_point(float(i), 0.0, float(i), data=i) for i in range(10)]
        result = evaluate_partitioning([events[:5], events[5:]])
        assert result["partitions"] == 2
        assert result["records"] == 10
        assert result["cv"] == 0.0

    def test_empty_layout(self):
        assert load_ov([]) == 0.0
        assert load_ov([[], []]) == 0.0
