"""Structure descriptors: candidate enumeration strategy equivalence."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.structures import (
    RasterStructure,
    SpatialMapStructure,
    TimeSeriesStructure,
)
from repro.geometry import Envelope, Polygon
from repro.temporal import Duration


def random_query(rng):
    x1, x2 = sorted((rng.uniform(-1, 11), rng.uniform(-1, 11)))
    y1, y2 = sorted((rng.uniform(-1, 11), rng.uniform(-1, 11)))
    t1, t2 = sorted((rng.uniform(-10, 110), rng.uniform(-10, 110)))
    return Envelope(x1, y1, x2, y2), Duration(t1, t2)


class TestTimeSeriesStructure:
    def test_regular_flag(self):
        assert TimeSeriesStructure.regular(Duration(0, 10), 5).is_regular
        assert not TimeSeriesStructure(Duration(0, 10).split(5)).is_regular

    def test_of_interval(self):
        s = TimeSeriesStructure.of_interval(Duration(0, 10), 3.0)
        assert s.n_cells == 4
        assert s.is_regular

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            TimeSeriesStructure([])

    def test_methods_agree(self):
        rng = random.Random(4)
        regular = TimeSeriesStructure.regular(Duration(0, 100), 10)
        irregular = TimeSeriesStructure(Duration(0, 100).split(10))
        for _ in range(25):
            env, dur = random_query(rng)
            naive = sorted(regular.candidate_cells(env, dur, "naive"))
            rtree = sorted(regular.candidate_cells(env, dur, "rtree"))
            grid = sorted(regular.candidate_cells(env, dur, "regular"))
            irr = sorted(irregular.candidate_cells(env, dur, "rtree"))
            assert naive == rtree == grid == irr

    def test_regular_method_on_irregular_rejected(self):
        s = TimeSeriesStructure(Duration(0, 10).split(2))
        with pytest.raises(ValueError):
            s.candidate_cells(Envelope(0, 0, 1, 1), Duration(0, 1), "regular")

    def test_unknown_method_rejected(self):
        s = TimeSeriesStructure.regular(Duration(0, 10), 2)
        with pytest.raises(ValueError):
            s.candidate_cells(Envelope(0, 0, 1, 1), Duration(0, 1), "bogus")

    def test_empty_instance(self):
        s = TimeSeriesStructure.regular(Duration(0, 10), 5)
        inst = s.empty_instance()
        assert inst.n_cells == 5
        assert inst.cell_values() == [[]] * 5


class TestSpatialMapStructure:
    def test_methods_agree(self):
        rng = random.Random(5)
        s = SpatialMapStructure.regular(Envelope(0, 0, 10, 10), 4, 5)
        for _ in range(25):
            env, dur = random_query(rng)
            naive = sorted(s.candidate_cells(env, dur, "naive"))
            rtree = sorted(s.candidate_cells(env, dur, "rtree"))
            grid = sorted(s.candidate_cells(env, dur, "regular"))
            assert naive == rtree == grid

    def test_irregular_polygons(self):
        cells = [
            Polygon([(0, 0), (5, 0), (5, 5), (0, 5)]),
            Polygon([(5, 0), (10, 0), (10, 5)]),
        ]
        s = SpatialMapStructure(cells)
        assert not s.is_regular
        hits = s.candidate_cells(Envelope(1, 1, 2, 2), Duration(0, 1), "rtree")
        assert hits == [0]

    def test_exact_cells_refinement(self):
        tri = Polygon([(0, 0), (10, 0), (0, 10)])
        s = SpatialMapStructure([tri])
        from repro.geometry import Point

        candidates = s.candidate_cells(
            Envelope(8, 8, 9, 9), Duration(0, 1), "rtree"
        )
        # MBR intersects the triangle's MBR, but the exact test fails.
        assert s.exact_cells(Point(8.5, 8.5), candidates) == []

    def test_grid_order_matches_envelope_split(self):
        extent = Envelope(0, 0, 4, 2)
        s = SpatialMapStructure.regular(extent, 4, 2)
        from repro.geometry import Point

        # Cell 1 per Envelope.split row-major order is x in [1,2], y in [0,1].
        hits = s.candidate_cells(
            Point(1.5, 0.5).envelope, Duration(0, 1), "regular"
        )
        assert hits == [1]


class TestRasterStructure:
    def test_methods_agree(self):
        rng = random.Random(6)
        s = RasterStructure.regular(Envelope(0, 0, 10, 10), Duration(0, 100), 3, 3, 4)
        for _ in range(25):
            env, dur = random_query(rng)
            naive = sorted(s.candidate_cells(env, dur, "naive"))
            rtree = sorted(s.candidate_cells(env, dur, "rtree"))
            grid = sorted(s.candidate_cells(env, dur, "regular"))
            assert naive == rtree == grid

    def test_of_product_irregular(self):
        geoms = [Polygon([(0, 0), (1, 0), (0, 1)])]
        durs = Duration(0, 10).split(2)
        s = RasterStructure.of_product(geoms, durs)
        assert s.n_cells == 2
        assert not s.is_regular

    def test_cell_order_matches_raster_instance(self):
        s = RasterStructure.regular(Envelope(0, 0, 2, 2), Duration(0, 4), 2, 2, 2)
        inst = s.empty_instance()
        for i, (geom, dur) in enumerate(s.cells):
            assert inst.entries[i].spatial == geom
            assert inst.entries[i].temporal == dur

    def test_rtree_built_once(self):
        s = RasterStructure.regular(Envelope(0, 0, 1, 1), Duration(0, 1), 2, 2, 2)
        assert s.rtree() is s.rtree()


query_coord = st.floats(min_value=-2, max_value=12, allow_nan=False)
query_time = st.floats(min_value=-20, max_value=120, allow_nan=False)


class TestStructureProperties:
    @given(query_coord, query_coord, query_coord, query_coord, query_time, query_time)
    @settings(max_examples=80, deadline=None)
    def test_raster_strategies_always_agree(self, a, b, c, d, t1, t2):
        x1, x2 = sorted((a, c))
        y1, y2 = sorted((b, d))
        lo, hi = sorted((t1, t2))
        env = Envelope(x1, y1, x2, y2)
        dur = Duration(lo, hi)
        s = RasterStructure.regular(Envelope(0, 0, 10, 10), Duration(0, 100), 4, 3, 5)
        naive = sorted(s.candidate_cells(env, dur, "naive"))
        rtree = sorted(s.candidate_cells(env, dur, "rtree"))
        grid = sorted(s.candidate_cells(env, dur, "regular"))
        assert naive == rtree == grid
