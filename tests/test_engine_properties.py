"""Property-based equivalence: RDD operations vs list semantics."""

from collections import Counter, defaultdict

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import EngineContext

ints = st.lists(st.integers(-50, 50), max_size=80)
n_parts = st.integers(1, 6)


def make_rdd(data, n):
    return EngineContext(default_parallelism=4).parallelize(data, n)


class TestListEquivalence:
    @given(ints, n_parts)
    @settings(max_examples=50, deadline=None)
    def test_map_filter(self, data, n):
        rdd = make_rdd(data, n)
        got = rdd.map(lambda x: x * 3).filter(lambda x: x > 0).collect()
        assert got == [x * 3 for x in data if x * 3 > 0]

    @given(ints, n_parts)
    @settings(max_examples=50, deadline=None)
    def test_flat_map(self, data, n):
        rdd = make_rdd(data, n)
        assert rdd.flat_map(lambda x: [x, x]).collect() == [
            y for x in data for y in (x, x)
        ]

    @given(ints, n_parts)
    @settings(max_examples=50, deadline=None)
    def test_count_and_sum(self, data, n):
        rdd = make_rdd(data, n)
        assert rdd.count() == len(data)
        assert rdd.sum() == sum(data)

    @given(ints, n_parts)
    @settings(max_examples=50, deadline=None)
    def test_distinct(self, data, n):
        rdd = make_rdd(data, n)
        assert sorted(rdd.distinct().collect()) == sorted(set(data))

    @given(ints, n_parts)
    @settings(max_examples=50, deadline=None)
    def test_sort_by(self, data, n):
        rdd = make_rdd(data, n)
        assert rdd.sort_by(lambda x: x).collect() == sorted(data)

    @given(ints, n_parts, st.integers(2, 5))
    @settings(max_examples=50, deadline=None)
    def test_reduce_by_key_equals_counter(self, data, n, modulus):
        rdd = make_rdd(data, n).map(lambda x: (x % modulus, 1))
        got = rdd.reduce_by_key(lambda a, b: a + b).collect_as_map()
        expected = dict(Counter(x % modulus for x in data))
        assert got == expected

    @given(ints, n_parts, st.integers(2, 5))
    @settings(max_examples=50, deadline=None)
    def test_group_by_key_preserves_multiset(self, data, n, modulus):
        rdd = make_rdd(data, n).map(lambda x: (x % modulus, x))
        got = rdd.group_by_key().collect()
        expected = defaultdict(list)
        for x in data:
            expected[x % modulus].append(x)
        assert {k: sorted(v) for k, v in got} == {
            k: sorted(v) for k, v in expected.items()
        }

    @given(ints, n_parts, st.integers(1, 8))
    @settings(max_examples=50, deadline=None)
    def test_repartition_preserves_multiset(self, data, n, m):
        rdd = make_rdd(data, n)
        out = rdd.repartition(m)
        assert Counter(out.collect()) == Counter(data)
        assert out.num_partitions == m

    @given(ints, n_parts, st.integers(1, 4))
    @settings(max_examples=50, deadline=None)
    def test_shuffle_by_preserves_multiset(self, data, n, m):
        rdd = make_rdd(data, n)
        out = rdd.shuffle_by(m, lambda x: abs(x) % m)
        assert Counter(out.collect()) == Counter(data)

    @given(ints, n_parts, st.integers(1, 4))
    @settings(max_examples=30, deadline=None)
    def test_coalesce_preserves_order(self, data, n, m):
        rdd = make_rdd(data, n)
        assert rdd.coalesce(m).collect() == data

    @given(ints)
    @settings(max_examples=30, deadline=None)
    def test_take_prefix(self, data):
        rdd = make_rdd(data, 3)
        for k in (0, 1, 5, len(data)):
            assert rdd.take(k) == data[:k]
