"""Shared fixtures."""

from __future__ import annotations

import random

import pytest

from repro.engine import EngineContext
from repro.instances import Event, Trajectory


@pytest.fixture
def ctx() -> EngineContext:
    return EngineContext(default_parallelism=4)


def make_events(n: int, seed: int = 7, extent: float = 10.0, t_extent: float = 86_400.0):
    """Uniform point events over [0, extent]^2 x [0, t_extent]."""
    rng = random.Random(seed)
    return [
        Event.of_point(
            rng.uniform(0.0, extent),
            rng.uniform(0.0, extent),
            rng.uniform(0.0, t_extent),
            data=i,
        )
        for i in range(n)
    ]


def make_trajectories(n: int, seed: int = 7, points: int = 10, extent: float = 10.0):
    """Random-walk trajectories inside [0, extent]^2, 15 s sampling."""
    rng = random.Random(seed)
    out = []
    for i in range(n):
        x = rng.uniform(0.5, extent - 0.5)
        y = rng.uniform(0.5, extent - 0.5)
        t = rng.uniform(0.0, 80_000.0)
        pts = []
        for _ in range(points):
            pts.append((x, y, t))
            x = min(max(x + rng.uniform(-0.05, 0.05), 0.0), extent)
            y = min(max(y + rng.uniform(-0.05, 0.05), 0.0), extent)
            t += 15.0
        out.append(Trajectory.of_points(pts, data=f"traj-{i}"))
    return out


@pytest.fixture
def events():
    return make_events(300)


@pytest.fixture
def trajectories():
    return make_trajectories(40)
