"""Cross-process determinism.

Python salts ``hash()`` per process; everything shuffle-related in this
repo routes through ``stable_hash`` instead, so partition layouts — and
therefore persisted datasets, balance metrics, and benchmark workloads —
must be identical across interpreter invocations.  These tests run the
same small pipeline in two fresh subprocesses (different hash seeds) and
compare the results byte for byte.
"""

import os
import subprocess
import sys

import pytest

_SCRIPT = r"""
import json
from repro.engine import EngineContext
from repro.datasets import generate_nyc_events
from repro.partitioners import TSTRPartitioner, HashPartitioner

events = generate_nyc_events(500, seed=11, days=5)
ctx = EngineContext(default_parallelism=4)
rdd = ctx.parallelize(events, 4)

tstr = TSTRPartitioner(2, 3)
layout_tstr = [sorted(ev.data for ev in p)
               for p in tstr.partition(rdd)._collect_partitions()]
hasher = HashPartitioner(8)
layout_hash = [sorted(ev.data for ev in p)
               for p in hasher.partition(rdd)._collect_partitions()]
pairs = rdd.map(lambda ev: (repr(ev.value), 1)).reduce_by_key(lambda a, b: a + b)
print(json.dumps({
    "tstr": layout_tstr,
    "hash": layout_hash,
    "counts": sorted(pairs.collect()),
}))
"""


def run_in_subprocess(hash_seed: str) -> str:
    # A scrubbed env controls the hash seed, but the child still needs to
    # find `repro`: propagate this interpreter's import path (covers both
    # PYTHONPATH-based and installed layouts) into the child's PYTHONPATH.
    result = subprocess.run(
        [sys.executable, "-c", _SCRIPT],
        capture_output=True,
        text=True,
        env={
            "PYTHONHASHSEED": hash_seed,
            "PATH": "/usr/bin:/bin",
            "PYTHONPATH": os.pathsep.join(p for p in sys.path if p),
        },
        timeout=120,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


@pytest.mark.parametrize("seeds", [("1", "424242")])
def test_layouts_identical_across_hash_seeds(seeds):
    a = run_in_subprocess(seeds[0])
    b = run_in_subprocess(seeds[1])
    assert a == b
