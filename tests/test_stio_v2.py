"""v2 block format: round-trip, parity, pushdown, conversion, corruption.

Also the regression tests for the block-decode hot-path fixes that landed
with the format: ``read_block`` metadata caching and corruption contract,
``LoadStats`` locking/set-dedupe, and orphan-block cleanup on rewrite.
"""

from __future__ import annotations

import pickle
import threading

import pytest

from repro.columnar.cache import (
    invalidate_partition_indexes,
    partition_boxtable,
    selection_cache,
)
from repro.core import Selector
from repro.engine import EngineContext
from repro.engine.errors import CorruptPartitionError, TaskFailure
from repro.engine.faults import FaultPlan, FaultRule
from repro.geometry import Envelope, LineString, Point, Polygon
from repro.instances import Event
from repro.stio import (
    DatasetMetadata,
    StDataset,
    V2Block,
    encode_v2_block,
    open_v2_block,
    save_dataset,
    scan_v2_block,
)
from repro.temporal import Duration
from tests.conftest import make_events, make_trajectories

QUERY_SPATIAL = Envelope(1.0, 1.0, 3.0, 3.0)
QUERY_TEMPORAL = Duration(0.0, 40_000.0)


@pytest.fixture(autouse=True)
def _fresh_index_cache():
    invalidate_partition_indexes()
    yield
    invalidate_partition_indexes()


def _identities(instances) -> list:
    return sorted(inst.identity() for inst in instances)


# -- block round-trip -------------------------------------------------------------


class TestV2BlockRoundTrip:
    def test_events(self, tmp_path):
        events = make_events(50)
        path = tmp_path / "block.stb"
        path.write_bytes(encode_v2_block(events, "tuple"))
        block = open_v2_block(path)
        assert block.n == 50
        assert block.filterable
        assert block.decode_all("tuple") == events

    def test_trajectories(self, tmp_path):
        trajs = make_trajectories(8)
        path = tmp_path / "block.stb"
        path.write_bytes(encode_v2_block(trajs, "tuple"))
        assert open_v2_block(path).decode_all("tuple") == trajs

    def test_geometry_variants(self, tmp_path):
        records = [
            Event(geom, Duration(0, 5), data=i)
            for i, geom in enumerate(
                (
                    Point(1, 2),
                    Envelope(0, 0, 1, 1),
                    LineString([(0, 0), (1, 1)]),
                    Polygon([(0, 0), (1, 0), (0, 1)]),
                )
            )
        ]
        path = tmp_path / "block.stb"
        path.write_bytes(encode_v2_block(records, "tuple"))
        assert open_v2_block(path).decode_all("tuple") == records

    def test_empty_block(self, tmp_path):
        path = tmp_path / "block.stb"
        path.write_bytes(encode_v2_block([], "tuple"))
        block = open_v2_block(path)
        assert block.n == 0
        assert block.decode_all("tuple") == []
        assert block.payload_nbytes() == 0

    def test_pickle_codec_is_not_filterable(self, tmp_path):
        # Arbitrary pickled payloads (checkpoint state) have no ST
        # extent; the block must decode whole rather than mask rows.
        path = tmp_path / "block.stb"
        path.write_bytes(encode_v2_block([{"a": 1}, {"b": 2}], "pickle"))
        block = open_v2_block(path)
        assert not block.filterable
        assert block.decode_all("pickle") == [{"a": 1}, {"b": 2}]

    def test_pushdown_mask_matches_scalar_filter(self, tmp_path):
        from repro.index.boxes import st_query_box

        events = make_events(200)
        path = tmp_path / "block.stb"
        path.write_bytes(encode_v2_block(events, "tuple"))
        block = open_v2_block(path)
        box = st_query_box(QUERY_SPATIAL, QUERY_TEMPORAL)
        rows = block.candidate_rows(box)
        decoded = block.decode_rows(rows, "tuple")
        expected = [e for e in events if e.st_box().intersects(box)]
        assert decoded == expected
        assert block.payload_nbytes(rows) <= block.payload_nbytes()

    def test_block_pickles_as_path(self, tmp_path):
        events = make_events(10)
        path = tmp_path / "block.stb"
        path.write_bytes(encode_v2_block(events, "tuple"))
        block = open_v2_block(path)
        clone = pickle.loads(pickle.dumps(block))
        assert isinstance(clone, V2Block)
        assert clone.path == block.path
        assert clone.decode_all("tuple") == events

    def test_truncated_and_garbage_blocks_rejected(self, tmp_path):
        path = tmp_path / "block.stb"
        path.write_bytes(b"junk")
        with pytest.raises(ValueError, match="block.stb"):
            open_v2_block(path)
        good = encode_v2_block(make_events(20), "tuple")
        path.write_bytes(good[: len(good) // 2])
        with pytest.raises(ValueError, match="block.stb"):
            open_v2_block(path)

    def test_scan_matches_compute_accounting(self, tmp_path):
        from repro.index.boxes import st_query_box

        events = make_events(100)
        path = tmp_path / "block.stb"
        path.write_bytes(encode_v2_block(events, "tuple"))
        box = st_query_box(QUERY_SPATIAL, QUERY_TEMPORAL)
        block = open_v2_block(path)
        rows = block.candidate_rows(box)
        records, nbytes = scan_v2_block(path, box)
        assert records == len(rows)
        assert nbytes == block.index_nbytes + block.payload_nbytes(rows)
        full_records, full_nbytes = scan_v2_block(path, None)
        assert full_records == 100
        assert full_nbytes == block.index_nbytes + block.payload_nbytes()


# -- dataset-level format behaviour ------------------------------------------------


class TestV2Dataset:
    def test_write_uses_stb_blocks_and_autodetects(self, ctx, tmp_path):
        events = make_events(120)
        ds = save_dataset(tmp_path / "ds", events, "event", block_format="v2")
        meta = ds.metadata()
        assert meta.block_format == "v2"
        assert all(m.filename.endswith(".stb") for m in meta.partitions)
        # No format argument anywhere: read() autodetects from metadata.
        rdd, _ = StDataset(tmp_path / "ds").read(ctx)
        assert _identities(rdd.collect()) == _identities(events)

    @pytest.mark.parametrize("mk", [make_events, make_trajectories])
    def test_selection_parity_v1_vs_v2(self, ctx, tmp_path, mk):
        data = mk(150)
        itype = "event" if mk is make_events else "trajectory"
        save_dataset(tmp_path / "v1", data, itype, block_format="v1")
        save_dataset(tmp_path / "v2", data, itype, block_format="v2")
        results = {}
        for fmt in ("v1", "v2"):
            invalidate_partition_indexes()
            selector = Selector(QUERY_SPATIAL, QUERY_TEMPORAL)
            results[fmt] = _identities(
                selector.select(ctx, tmp_path / fmt).collect()
            )
        assert results["v1"] == results["v2"]

    def test_pruned_read_decodes_only_matching_rows(self, ctx, tmp_path):
        events = make_events(300)
        save_dataset(tmp_path / "ds", events, "event", block_format="v2")
        rdd, stats = StDataset(tmp_path / "ds").read(
            ctx, QUERY_SPATIAL, QUERY_TEMPORAL
        )
        got = rdd.collect()
        # Point events: the extent mask is exact, so the pushdown loads
        # precisely the matching rows — the Figure 5 proportionality.
        assert stats.records_loaded == len(got) < len(events)
        assert stats.bytes_read > 0

    def test_unpruned_read_loads_everything(self, ctx, tmp_path):
        events = make_events(100)
        save_dataset(tmp_path / "ds", events, "event", block_format="v2")
        rdd, stats = StDataset(tmp_path / "ds").read(ctx, use_metadata=False)
        assert len(rdd.collect()) == len(events)
        assert stats.records_loaded == len(events)

    def test_append_continues_v2_format(self, ctx, tmp_path):
        events = make_events(80)
        ds = save_dataset(
            tmp_path / "ds", events[:40], "event", num_partitions=2, block_format="v2"
        )
        ds.append([events[40:60], events[60:]])
        meta = ds.metadata()
        assert meta.block_format == "v2"
        assert [m.filename for m in meta.partitions][-1] == "part-00003.stb"
        rdd, _ = ds.read(ctx)
        assert _identities(rdd.collect()) == _identities(events)

    def test_unknown_block_format_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="block format"):
            StDataset.write(tmp_path / "ds", [[]], "event", block_format="v3")
        save_dataset(tmp_path / "ok", make_events(10), "event")
        meta_path = tmp_path / "ok" / "metadata.json"
        meta_path.write_text(
            meta_path.read_text().replace('"block_format": "v1"', '"block_format": "v9"')
        )
        with pytest.raises(ValueError, match="block format"):
            StDataset(tmp_path / "ok").metadata()

    def test_merge_rejects_mixed_formats(self):
        v1 = DatasetMetadata(instance_type="event", partitions=[], block_format="v1")
        v2 = DatasetMetadata(instance_type="event", partitions=[], block_format="v2")
        with pytest.raises(ValueError, match="block formats"):
            v1.merged_with(v2)

    def test_process_backend_parity(self, tmp_path):
        events = make_events(120)
        save_dataset(tmp_path / "ds", events, "event", block_format="v2")
        seq_ctx = EngineContext(default_parallelism=4)
        proc_ctx = EngineContext(
            default_parallelism=2, backend="process", backend_options={"warmup": False}
        )
        try:
            seq_rdd, seq_stats = StDataset(tmp_path / "ds").read(
                seq_ctx, QUERY_SPATIAL, QUERY_TEMPORAL
            )
            proc_rdd, proc_stats = StDataset(tmp_path / "ds").read(
                proc_ctx, QUERY_SPATIAL, QUERY_TEMPORAL
            )
            assert _identities(seq_rdd.collect()) == _identities(proc_rdd.collect())
            # Driver-side scan accounting equals worker-side observation.
            assert proc_stats.records_loaded == seq_stats.records_loaded
            assert proc_stats.bytes_read == seq_stats.bytes_read
        finally:
            seq_ctx.stop()
            proc_ctx.stop()


class TestConvert:
    def test_in_place_conversion(self, ctx, tmp_path):
        events = make_events(90)
        ds = save_dataset(tmp_path / "ds", events, "event", num_partitions=5)
        generation = ds.metadata().generation
        converted = ds.convert("v2")
        meta = converted.metadata()
        assert meta.block_format == "v2"
        assert meta.generation == generation + 1
        assert not list((tmp_path / "ds").glob("part-*.pkl"))
        rdd, _ = converted.read(ctx)
        assert _identities(rdd.collect()) == _identities(events)

    def test_conversion_to_copy_preserves_source(self, ctx, tmp_path):
        events = make_events(60)
        ds = save_dataset(tmp_path / "src", events, "event")
        converted = ds.convert("v2", out=tmp_path / "dst")
        assert ds.metadata().block_format == "v1"
        assert converted.metadata().block_format == "v2"
        from repro.index.boxes import st_query_box

        box = st_query_box(QUERY_SPATIAL, QUERY_TEMPORAL)
        expected = _identities([e for e in events if e.st_box().intersects(box)])
        for d in ("src", "dst"):
            invalidate_partition_indexes()
            selector = Selector(QUERY_SPATIAL, QUERY_TEMPORAL)
            assert (
                _identities(selector.select(ctx, tmp_path / d).collect()) == expected
            )

    def test_round_trip_back_to_v1(self, ctx, tmp_path):
        events = make_events(70)
        ds = save_dataset(tmp_path / "ds", events, "event", block_format="v2")
        back = ds.convert("v1")
        meta = back.metadata()
        assert meta.block_format == "v1"
        assert not list((tmp_path / "ds").glob("part-*.stb"))
        rdd, _ = back.read(ctx)
        assert _identities(rdd.collect()) == _identities(events)


# -- corruption -------------------------------------------------------------------


class TestV2Corruption:
    def test_corrupt_v2_block_raises_with_filename(self, ctx, tmp_path):
        save_dataset(tmp_path / "ds", make_events(60), "event", block_format="v2")
        (tmp_path / "ds" / "part-00001.stb").write_bytes(b"scrambled")
        rdd, _ = StDataset(tmp_path / "ds").read(ctx, use_metadata=False)
        with pytest.raises(TaskFailure) as exc_info:
            rdd.collect()
        assert isinstance(exc_info.value.cause, CorruptPartitionError)
        assert "part-00001.stb" in str(exc_info.value.cause)

    def test_quarantine_skips_corrupt_v2_block(self, ctx, tmp_path):
        events = make_events(60)
        save_dataset(tmp_path / "ds", events, "event", block_format="v2")
        lost = StDataset(tmp_path / "ds").metadata().partitions[1].count
        (tmp_path / "ds" / "part-00001.stb").write_bytes(b"scrambled")
        rdd, stats = StDataset(tmp_path / "ds").read(
            ctx, use_metadata=False, on_corrupt="quarantine"
        )
        assert rdd.count() == len(events) - lost
        assert stats.partitions_quarantined == 1
        assert stats.quarantined_files == ["part-00001.stb"]

    def test_injected_corrupt_read_is_transient_on_v2(self, tmp_path):
        events = make_events(60)
        save_dataset(tmp_path / "ds", events, "event", block_format="v2")
        plan = FaultPlan([FaultRule("corrupt_read", path="part-00000")])
        ctx = EngineContext(default_parallelism=4, fault_plan=plan)
        try:
            rdd, stats = StDataset(tmp_path / "ds").read(ctx, use_metadata=False)
            assert rdd.count() == len(events)
            assert ctx.metrics.faults_injected >= 1
            assert stats.partitions_quarantined == 0
        finally:
            ctx.stop()


# -- hot-path regression fixes ----------------------------------------------------


class TestReadBlockRegressions:
    def test_read_block_parses_metadata_once(self, tmp_path, monkeypatch):
        ds = save_dataset(tmp_path / "ds", make_events(100), "event")
        metas = ds.metadata().partitions
        handle = StDataset(tmp_path / "ds")
        calls = {"n": 0}
        original = DatasetMetadata.load.__func__

        def counting(cls, directory):
            calls["n"] += 1
            return original(cls, directory)

        monkeypatch.setattr(DatasetMetadata, "load", classmethod(counting))
        for meta in metas:
            handle.read_block(meta)
        # One parse, memoized on the file's stat signature — not one per block.
        assert calls["n"] == 1

    def test_read_block_honors_corruption_contract_v1(self, tmp_path):
        ds = save_dataset(tmp_path / "ds", make_events(40), "event")
        meta = ds.metadata().partitions[0]
        (tmp_path / "ds" / meta.filename).write_bytes(b"not a pickle")
        handle = StDataset(tmp_path / "ds")
        with pytest.raises(CorruptPartitionError) as exc_info:
            handle.read_block(meta)
        assert meta.filename in str(exc_info.value)
        assert handle.read_block(meta, on_corrupt="quarantine") == []

    def test_read_block_indexed_returns_mmap_boxtable(self, tmp_path):
        events = make_events(50)
        ds = save_dataset(
            tmp_path / "ds", events, "event", num_partitions=1, block_format="v2"
        )
        meta = ds.metadata().partitions[0]
        records, table = ds.read_block_indexed(meta)
        assert len(records) == len(events)
        assert table is not None
        assert len(table) == len(records)
        # v1 blocks carry no columnar sidecar.
        ds1 = save_dataset(tmp_path / "v1", events, "event", num_partitions=1)
        _, no_table = ds1.read_block_indexed(ds1.metadata().partitions[0])
        assert no_table is None


class TestOrphanCleanup:
    def test_shrinking_rewrite_removes_stale_blocks(self, tmp_path):
        events = make_events(80)
        parts = [events[i::8] for i in range(8)]
        StDataset.write(tmp_path / "ds", parts, "event")
        assert len(list((tmp_path / "ds").glob("part-*.pkl"))) == 8
        StDataset.write(tmp_path / "ds", [events[:40], events[40:]], "event")
        remaining = sorted(p.name for p in (tmp_path / "ds").glob("part-*"))
        assert remaining == ["part-00000.pkl", "part-00001.pkl"]
        meta = StDataset(tmp_path / "ds").metadata()
        assert meta.total_records == len(events)


class TestLoadStats:
    def test_concurrent_note_block_is_exact(self):
        from repro.stio.dataset import LoadStats

        stats = LoadStats()
        names = [f"part-{i:05d}.stb" for i in range(50)]

        def hammer():
            for name in names:
                stats.note_block(name, 10, 100)

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        # Every block counted exactly once despite 8 racing readers.
        assert stats.partitions_read == 50
        assert stats.records_loaded == 500
        assert stats.bytes_read == 5_000

    def test_stats_survive_pickling(self):
        from repro.stio.dataset import LoadStats

        stats = LoadStats()
        stats.note_block("part-00000.stb", 5, 50)
        clone = pickle.loads(pickle.dumps(stats))
        assert clone.partitions_read == 1
        assert clone.files == {"part-00000.stb"}
        # The recreated lock still guards further mutation.
        assert clone.note_block("part-00001.stb", 1, 10)

    def test_thread_backend_load_counts_each_block_once(self, tmp_path):
        events = make_events(200)
        save_dataset(tmp_path / "ds", events, "event", block_format="v2")
        ctx = EngineContext(default_parallelism=8, backend="thread")
        try:
            rdd, stats = StDataset(tmp_path / "ds").read(ctx, use_metadata=False)
            rdd.collect()
            rdd.collect()  # recompute: dedupe must hold across evaluations
            assert stats.records_loaded == len(events)
            assert stats.partitions_read == len(stats.files)
        finally:
            ctx.stop()


# -- zero-copy shipping ------------------------------------------------------------


class TestZeroCopyShipping:
    def test_captured_mmap_boxtable_ships_out_of_band(self, tmp_path):
        from repro.engine.exec.base import StageSpec
        from repro.engine.exec.process import _serialize_stage

        events = make_events(200)
        ds = save_dataset(
            tmp_path / "ds", events, "event", num_partitions=1, block_format="v2"
        )
        meta = ds.metadata().partitions[0]
        records, table = ds.read_block_indexed(meta)
        assert table is not None

        def task(split: int, t=table) -> list:
            return [float(t.xmin[0])]

        payload, buffers = _serialize_stage(StageSpec(num_partitions=1, task=task))
        # The six extent columns ride protocol-5 out-of-band buffers
        # instead of being copied into the in-band pickle stream.
        assert buffers
        assert sum(len(b) for b in buffers) >= 6 * len(records) * 8


# -- serve residency ---------------------------------------------------------------


class TestServeOverV2:
    def _state(self, tmp_path, **kwargs):
        from repro.serve.server import DatasetState

        events = make_events(150)
        save_dataset(tmp_path / "ds", events, "event", block_format="v2")
        return events, DatasetState(tmp_path / "ds", **kwargs)

    def test_resident_blocks_seed_the_selection_cache(self, tmp_path):
        _, state = self._state(tmp_path)
        cache = selection_cache()
        partitions, scanned, _ = state.partitions_for(QUERY_SPATIAL, QUERY_TEMPORAL)
        assert scanned == len(partitions)
        for partition in partitions:
            before = cache.misses
            table, hit = partition_boxtable(partition)
            # The mmapped table was planted at decode time: first probe hits.
            assert hit
            assert cache.misses == before
            assert len(table) == len(partition)

    def test_quarantined_block_answers_empty_and_is_not_cached(self, tmp_path):
        _, state = self._state(tmp_path, on_corrupt="quarantine")
        target = state.meta.partitions[0]
        (state.dataset.directory / target.filename).write_bytes(b"bad")
        partitions, _, _ = state.partitions_for(None, None)
        assert [] in partitions
        assert state.blocks_quarantined == 1
        # Not resident: a repaired file is picked up on the next query.
        assert state.resident_blocks() == len(state.meta.partitions) - 1
