"""Property-based round-trip tests for both on-disk codecs.

Invariants: the ST4ML codec round-trips instances exactly; the baseline
geo-record codec round-trips the ST content to timestamp-string precision
(microseconds) while degrading identities to reprs — the exact cost model
the baselines are supposed to pay, no more and no less.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.records import geo_record_to_instance, instance_to_geo_record
from repro.instances import Event, Trajectory
from repro.stio.formats import decode_record, encode_record

coord = st.floats(min_value=-179, max_value=179, allow_nan=False)
lat = st.floats(min_value=-85, max_value=85, allow_nan=False)
# Timestamps within datetime's comfortable range, at ms precision so the
# string format (microseconds) is lossless.
timestamp = st.integers(min_value=0, max_value=4_000_000_000).map(lambda ms: ms / 1000.0)
identity = st.one_of(st.integers(-1_000_000, 1_000_000), st.text(min_size=0, max_size=12))


@st.composite
def events(draw):
    return Event.of_point(
        draw(coord), draw(lat), draw(timestamp), value=draw(identity), data=draw(identity)
    )


@st.composite
def trajectories(draw):
    n = draw(st.integers(1, 6))
    times = sorted(draw(timestamp) for _ in range(n))
    points = [(draw(coord), draw(lat), t) for t in times]
    return Trajectory.of_points(points, data=draw(identity))


class TestSt4mlCodec:
    @given(events())
    @settings(max_examples=80)
    def test_event_roundtrip_exact(self, ev):
        assert decode_record(encode_record(ev)) == ev

    @given(trajectories())
    @settings(max_examples=60)
    def test_trajectory_roundtrip_exact(self, traj):
        restored = decode_record(encode_record(traj))
        assert restored == traj


class TestBaselineCodec:
    @given(events())
    @settings(max_examples=60)
    def test_event_st_content_preserved(self, ev):
        restored = geo_record_to_instance(instance_to_geo_record(ev))
        assert restored.spatial == ev.spatial
        assert math.isclose(
            restored.temporal.start, ev.temporal.start, abs_tol=1e-5
        )
        # Identity degrades to a repr string — by design.
        assert restored.data == repr(ev.data)

    @given(trajectories())
    @settings(max_examples=40)
    def test_trajectory_st_content_preserved(self, traj):
        restored = geo_record_to_instance(instance_to_geo_record(traj))
        assert len(restored.entries) == len(traj.entries)
        for original, back in zip(traj.entries, restored.entries):
            assert back.spatial == original.spatial
            assert math.isclose(
                back.temporal.start, original.temporal.start, abs_tol=1e-5
            )

    @given(trajectories())
    @settings(max_examples=40)
    def test_selection_predicate_survives_roundtrip(self, traj):
        """A baseline must select the same records ST4ML does."""
        restored = geo_record_to_instance(instance_to_geo_record(traj))
        env = traj.spatial_extent.expanded(0.1)
        dur = traj.temporal_extent.expanded(1.0)
        assert restored.intersects(env, dur)
        assert traj.intersects(env, dur)
