"""Collective instance tests: TimeSeries, SpatialMap, Raster."""

import pytest

from repro.geometry import Envelope, Polygon
from repro.instances import Event, Raster, SpatialMap, TimeSeries
from repro.temporal import Duration


class TestTimeSeries:
    def test_regular_construction(self):
        ts = TimeSeries.regular(Duration(0, 24), 6.0)
        assert ts.n_cells == 4
        assert not ts.is_singular
        assert ts.slots()[0] == Duration(0, 6)

    def test_of_slots_value_factory(self):
        ts = TimeSeries.of_slots([Duration(0, 1), Duration(1, 2)], value_factory=dict)
        assert ts.cell_values() == [{}, {}]

    def test_slot_order_enforced(self):
        with pytest.raises(ValueError):
            TimeSeries.of_slots([Duration(5, 6), Duration(0, 1)])

    def test_slot_of(self):
        ts = TimeSeries.regular(Duration(0, 10), 2.0)
        assert ts.slot_of(3.0) == 1
        assert ts.slot_of(99.0) is None

    def test_map_value(self):
        ts = TimeSeries.regular(Duration(0, 4), 2.0).with_cell_values([1, 2])
        assert ts.map_value(lambda v: v * 10).cell_values() == [10, 20]

    def test_map_value_plus_sees_boundaries(self):
        ts = TimeSeries.regular(Duration(0, 4), 2.0).with_cell_values([0, 0])
        out = ts.map_value_plus(lambda v, s, t: t.start)
        assert out.cell_values() == [0.0, 2.0]

    def test_map_data_plus(self):
        ts = TimeSeries.regular(Duration(0, 4), 2.0, data="x")
        out = ts.map_data_plus(lambda d, spatials, temporals: (d, len(temporals)))
        assert out.data == ("x", 2)


class TestSpatialMap:
    def test_regular(self):
        sm = SpatialMap.regular(Envelope(0, 0, 4, 4), 2, 2)
        assert sm.n_cells == 4

    def test_of_geometries_empty_rejected(self):
        with pytest.raises(ValueError):
            SpatialMap.of_geometries([])

    def test_cell_of_point_envelope_cells(self):
        sm = SpatialMap.regular(Envelope(0, 0, 4, 4), 2, 2)
        assert sm.cell_of_point(0.5, 0.5) == 0
        assert sm.cell_of_point(3.5, 3.5) == 3
        assert sm.cell_of_point(9, 9) is None

    def test_cell_of_point_polygon_cells(self):
        tri = Polygon([(0, 0), (4, 0), (0, 4)])
        sm = SpatialMap.of_geometries([tri])
        assert sm.cell_of_point(1, 1) == 0
        assert sm.cell_of_point(3.9, 3.9) is None

    def test_geometries_accessor(self):
        cells = Envelope(0, 0, 2, 2).split(2, 1)
        sm = SpatialMap.of_geometries(cells)
        assert sm.geometries() == cells


class TestRaster:
    def test_regular_cell_count_and_order(self):
        r = Raster.regular(Envelope(0, 0, 2, 2), Duration(0, 4), 2, 2, 2)
        assert r.n_cells == 8
        # Spatial-major, temporal inner.
        assert r.entries[0].temporal == Duration(0, 2)
        assert r.entries[1].temporal == Duration(2, 4)
        assert r.entries[0].spatial == r.entries[1].spatial

    def test_of_product(self):
        geoms = Envelope(0, 0, 2, 1).split(2, 1)
        durs = Duration(0, 2).split(2)
        r = Raster.of_product(geoms, durs)
        assert r.n_cells == 4
        assert r.spatial_cells() == geoms
        assert r.temporal_slots() == durs

    def test_of_cells_empty_rejected(self):
        with pytest.raises(ValueError):
            Raster.of_cells([])


class TestMergeWith:
    def test_cellwise_merge(self):
        base = TimeSeries.regular(Duration(0, 4), 2.0)
        a = base.with_cell_values([1, 2])
        b = base.with_cell_values([10, 20])
        merged = a.merge_with(b, lambda x, y: x + y)
        assert merged.cell_values() == [11, 22]

    def test_merge_type_mismatch_rejected(self):
        ts = TimeSeries.regular(Duration(0, 4), 2.0)
        sm = SpatialMap.regular(Envelope(0, 0, 1, 1), 2, 1)
        with pytest.raises(TypeError):
            ts.merge_with(sm, lambda a, b: a)

    def test_merge_cell_count_mismatch_rejected(self):
        a = TimeSeries.regular(Duration(0, 4), 2.0)
        b = TimeSeries.regular(Duration(0, 4), 1.0)
        with pytest.raises(ValueError):
            a.merge_with(b, lambda x, y: x)

    def test_merge_different_structures_rejected(self):
        a = TimeSeries.regular(Duration(0, 4), 2.0)
        b = TimeSeries.regular(Duration(1, 5), 2.0)
        with pytest.raises(ValueError):
            a.merge_with(b, lambda x, y: x)

    def test_with_cell_values_length_checked(self):
        ts = TimeSeries.regular(Duration(0, 4), 2.0)
        with pytest.raises(ValueError):
            ts.with_cell_values([1])


class TestEquality:
    def test_instances_of_same_content_equal(self):
        a = Event.of_point(1, 2, 3, data="x")
        b = Event.of_point(1, 2, 3, data="x")
        assert a == b

    def test_different_types_not_equal(self):
        ts = TimeSeries.regular(Duration(0, 2), 1.0)
        r = Raster.regular(Envelope(0, 0, 1, 1), Duration(0, 2), 1, 1, 2)
        assert ts != r
