"""Cross-cutting edge cases: empty selections, degenerate data, boundary
records, and format helpers."""

import csv

import pytest

from repro.core import Selector
from repro.core.converters import Event2SmConverter, Event2TsConverter
from repro.core.extractors import SmFlowExtractor, TsFlowExtractor
from repro.core.structures import SpatialMapStructure, TimeSeriesStructure
from repro.engine import EngineContext
from repro.geometry import Envelope
from repro.instances import Event, Trajectory
from repro.partitioners import TSTRPartitioner
from repro.stio import save_dataset
from repro.stio.formats import write_features_csv
from repro.temporal import Duration


@pytest.fixture
def ctx():
    return EngineContext(default_parallelism=4)


class TestEmptySelections:
    def test_selector_empty_result(self, ctx):
        events = [Event.of_point(0, 0, 0, data=0)]
        out = Selector(Envelope(5, 5, 6, 6), Duration(10, 20)).select(ctx, events)
        assert out.collect() == []

    def test_empty_selection_through_conversion(self, ctx):
        out = Selector(Envelope(5, 5, 6, 6), Duration(10, 20)).select(
            ctx, [Event.of_point(0, 0, 0)]
        )
        structure = TimeSeriesStructure.regular(Duration(0, 10), 2)
        converted = Event2TsConverter(structure).convert(out)
        flow = TsFlowExtractor().extract(converted)
        assert flow.cell_values() == [0, 0]

    def test_disk_dataset_fully_pruned(self, ctx, tmp_path):
        events = [Event.of_point(1.0, 1.0, 100.0, data=i) for i in range(20)]
        save_dataset(tmp_path / "d", events, "event", ctx=ctx)
        selector = Selector(Envelope(50, 50, 60, 60), Duration(0, 1e6))
        out = selector.select(ctx, tmp_path / "d")
        assert out.count() == 0
        out.count()
        assert selector.last_load_stats.partitions_read == 0


class TestBoundaryRecords:
    def test_event_on_cell_corner_lands_in_all_touching_cells(self, ctx):
        structure = SpatialMapStructure.regular(Envelope(0, 0, 2, 2), 2, 2)
        corner = Event.of_point(1.0, 1.0, 0.0, data="corner")
        converted = Event2SmConverter(structure).convert(ctx.parallelize([corner], 1))
        flows = SmFlowExtractor().extract(converted).cell_values()
        assert flows == [1, 1, 1, 1]

    def test_event_on_slot_boundary_in_both_slots(self, ctx):
        structure = TimeSeriesStructure.regular(Duration(0, 20), 2)
        ev = Event.of_point(0, 0, 10.0)
        converted = Event2TsConverter(structure).convert(ctx.parallelize([ev], 1))
        flow = TsFlowExtractor().extract(converted)
        assert flow.cell_values() == [1, 1]

    def test_partitioner_boundary_record_not_duplicated_without_flag(self, ctx):
        events = [Event.of_point(float(i % 10), float(i % 10), float(i), data=i) for i in range(100)]
        out = TSTRPartitioner(3, 3).partition(ctx.parallelize(events, 4), duplicate=False)
        assert out.count() == 100


class TestDegenerateData:
    def test_all_events_at_one_point(self, ctx):
        events = [Event.of_point(1.0, 1.0, float(i), data=i) for i in range(50)]
        p = TSTRPartitioner(4, 4)
        out = p.partition(ctx.parallelize(events, 2))
        assert out.count() == 50

    def test_single_point_trajectory(self):
        traj = Trajectory.of_points([(1, 1, 5)], data="single")
        assert traj.length_meters() == 0.0
        assert traj.average_speed_kmh() == 0.0
        assert list(traj.consecutive()) == []

    def test_trajectory_with_identical_consecutive_points(self):
        traj = Trajectory.of_points([(1, 1, 0), (1, 1, 10), (1, 1, 20)], data="parked")
        assert traj.segment_speeds_ms() == [0.0, 0.0]

    def test_zero_length_temporal_query(self, ctx):
        events = [Event.of_point(0, 0, 10.0, data="hit"), Event.of_point(0, 0, 11.0, data="miss")]
        out = Selector(Envelope(-1, -1, 1, 1), Duration.instant(10.0)).select(ctx, events)
        assert [ev.data for ev in out.collect()] == ["hit"]


class TestFeaturesCsv:
    def test_write_features_csv(self, tmp_path):
        path = tmp_path / "features.csv"
        rows = [{"cell": 0, "speed": 31.5}, {"cell": 1, "speed": None}]
        write_features_csv(path, rows, columns=["cell", "speed"])
        with open(path, newline="") as f:
            parsed = list(csv.DictReader(f))
        assert parsed[0]["cell"] == "0"
        assert parsed[0]["speed"] == "31.5"
        assert parsed[1]["speed"] == ""

    def test_missing_columns_written_empty(self, tmp_path):
        path = tmp_path / "features.csv"
        write_features_csv(path, [{"a": 1}], columns=["a", "b"])
        with open(path, newline="") as f:
            parsed = list(csv.DictReader(f))
        assert parsed[0]["b"] == ""


class TestSelectorIndexEquivalenceOnTrickyShapes:
    def test_l_shaped_trajectory_mbr_false_positive(self, ctx):
        """Per-partition R-tree prunes by MBR; the exact pass must still
        reject MBR-only matches."""
        traj = Trajectory.of_points([(0, 0, 0), (10, 0, 10), (10, 10, 20)], data="L")
        query_s = Envelope(0, 9, 1, 10)  # inside MBR, away from the path
        query_t = Duration(0, 100)
        for index in (True, False):
            out = Selector(query_s, query_t, index=index).select(ctx, [traj])
            assert out.collect() == []
