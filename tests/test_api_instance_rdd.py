"""InstanceRDD (Table 4 extension API) tests."""

import pytest

from repro.core import InstanceRDD
from repro.engine import EngineContext
from repro.instances import TimeSeries
from repro.temporal import Duration


@pytest.fixture
def ctx():
    return EngineContext(default_parallelism=2)


@pytest.fixture
def crdd(ctx):
    """Two partial time series over the same 3-slot structure."""
    base = TimeSeries.regular(Duration(0, 30), 10.0)
    a = base.with_cell_values([[1], [2, 2], []])
    b = base.with_cell_values([[10], [], [30]])
    return InstanceRDD(ctx.parallelize([a, b], 2))


class TestMapOperators:
    def test_map_value(self, crdd):
        out = crdd.map_value(len)
        values = [inst.cell_values() for inst in out.collect()]
        assert values == [[1, 2, 0], [1, 0, 1]]

    def test_map_value_plus_receives_bounds(self, crdd):
        out = crdd.map_value_plus(lambda v, s, t: (len(v), t.start))
        first = out.collect()[0].cell_values()
        assert first == [(1, 0.0), (2, 10.0), (0, 20.0)]

    def test_map_data(self, ctx):
        ts = TimeSeries.regular(Duration(0, 10), 5.0, data=3)
        out = InstanceRDD(ctx.parallelize([ts], 1)).map_data(lambda d: d * 7)
        assert out.collect()[0].data == 21

    def test_map_data_plus(self, crdd):
        out = crdd.map_data_plus(lambda d, spatials, temporals: len(temporals))
        assert [inst.data for inst in out.collect()] == [3, 3]

    def test_operators_chain(self, crdd):
        out = crdd.map_value(len).map_value(lambda n: n * 10)
        assert out.collect()[0].cell_values() == [10, 20, 0]


class TestCollectAndMerge:
    def test_concatenation(self, crdd):
        merged = crdd.collect_and_merge([], lambda acc, v: acc + v)
        assert sorted(merged) == [1, 2, 2, 10, 30]

    def test_numeric_fold(self, crdd):
        total = crdd.map_value(len).collect_and_merge(0, lambda acc, v: acc + v)
        assert total == 5

    def test_merge_instances(self, crdd):
        merged = crdd.merge_instances(lambda a, b: a + b)
        assert merged.cell_values() == [[1, 10], [2, 2], [30]]


class TestDelegation:
    def test_rdd_methods_pass_through(self, crdd):
        assert crdd.count() == 2
        assert crdd.num_partitions == 2

    def test_repr(self, crdd):
        assert "InstanceRDD" in repr(crdd)
