"""Point, LineString, Polygon unit tests."""

import math
import pickle

import pytest

from repro.geometry import Envelope, LineString, Point, Polygon


class TestPoint:
    def test_envelope_is_degenerate(self):
        assert Point(1, 2).envelope == Envelope(1, 2, 1, 2)

    def test_is_point_flag(self):
        assert Point(0, 0).is_point
        assert Envelope(0, 0, 1, 1).is_point
        assert not LineString([(0, 0), (1, 1)]).is_point

    def test_distance(self):
        assert Point(0, 0).distance_to(Point(3, 4)) == 5.0

    def test_distance_to_envelope(self):
        assert Point(0, 0).distance_to(Envelope(3, 4, 5, 6)) == 5.0
        assert Point(4, 5).distance_to(Envelope(3, 4, 5, 6)) == 0.0

    def test_nan_rejected(self):
        with pytest.raises(ValueError):
            Point(math.nan, 0)

    def test_immutability_and_pickle(self):
        p = Point(1.5, 2.5)
        with pytest.raises(AttributeError):
            p.x = 9
        assert pickle.loads(pickle.dumps(p)) == p


class TestLineString:
    def test_needs_two_vertices(self):
        with pytest.raises(ValueError):
            LineString([(0, 0)])

    def test_length(self):
        ls = LineString([(0, 0), (3, 0), (3, 4)])
        assert ls.length == 7.0

    def test_centroid_is_length_midpoint(self):
        ls = LineString([(0, 0), (10, 0)])
        assert ls.centroid() == Point(5, 0)

    def test_envelope(self):
        ls = LineString([(0, 1), (4, -2), (2, 5)])
        assert ls.envelope == Envelope(0, -2, 4, 5)

    def test_intersects_crossing_linestrings(self):
        a = LineString([(0, 0), (2, 2)])
        b = LineString([(0, 2), (2, 0)])
        assert a.intersects(b)
        assert b.intersects(a)

    def test_disjoint_linestrings(self):
        a = LineString([(0, 0), (1, 0)])
        b = LineString([(0, 2), (1, 2)])
        assert not a.intersects(b)

    def test_intersects_envelope_crossing_without_vertex_inside(self):
        # Segment passes straight through the box; no endpoint inside.
        ls = LineString([(-1, 0.5), (2, 0.5)])
        assert ls.intersects(Envelope(0, 0, 1, 1))

    def test_not_intersecting_envelope(self):
        assert not LineString([(-1, 5), (2, 5)]).intersects(Envelope(0, 0, 1, 1))

    def test_distance_to_point(self):
        ls = LineString([(0, 0), (10, 0)])
        assert ls.distance_to(Point(5, 3)) == 3.0
        assert ls.distance_to(Point(-3, 4)) == 5.0

    def test_pickle_roundtrip(self):
        ls = LineString([(0, 0), (1, 2), (3, 1)])
        assert pickle.loads(pickle.dumps(ls)) == ls


class TestPolygon:
    def test_needs_three_vertices(self):
        with pytest.raises(ValueError):
            Polygon([(0, 0), (1, 1)])

    def test_closing_vertex_normalized(self):
        a = Polygon([(0, 0), (1, 0), (1, 1), (0, 0)])
        b = Polygon([(0, 0), (1, 0), (1, 1)])
        assert a == b

    def test_area_shoelace(self):
        square = Polygon([(0, 0), (2, 0), (2, 2), (0, 2)])
        assert square.area == 4.0
        triangle = Polygon([(0, 0), (4, 0), (0, 3)])
        assert triangle.area == 6.0

    def test_centroid_of_square(self):
        square = Polygon([(0, 0), (2, 0), (2, 2), (0, 2)])
        assert square.centroid() == Point(1, 1)

    def test_contains_point(self):
        tri = Polygon([(0, 0), (4, 0), (0, 4)])
        assert tri.contains_point(1, 1)
        assert not tri.contains_point(3, 3)

    def test_contains_boundary_point(self):
        tri = Polygon([(0, 0), (4, 0), (0, 4)])
        assert tri.contains_point(2, 0)  # on an edge
        assert tri.contains_point(0, 0)  # on a vertex

    def test_intersects_point_geometry(self):
        tri = Polygon([(0, 0), (4, 0), (0, 4)])
        assert tri.intersects(Point(1, 1))
        assert not tri.intersects(Point(5, 5))

    def test_intersects_envelope_cases(self):
        tri = Polygon([(0, 0), (4, 0), (0, 4)])
        assert tri.intersects(Envelope(1, 1, 2, 2))  # box corner in polygon
        assert tri.intersects(Envelope(-1, -1, 5, 5))  # polygon inside box
        assert not tri.intersects(Envelope(4, 4, 5, 5))

    def test_intersects_envelope_edge_crossing_only(self):
        # Thin box crossing the hypotenuse, no vertices contained either way.
        tri = Polygon([(0, 0), (4, 0), (0, 4)])
        assert tri.intersects(Envelope(1.9, 1.9, 2.2, 2.2))

    def test_intersects_linestring(self):
        tri = Polygon([(0, 0), (4, 0), (0, 4)])
        assert tri.intersects(LineString([(-1, 1), (5, 1)]))
        assert not tri.intersects(LineString([(5, 5), (6, 6)]))

    def test_intersects_polygon(self):
        a = Polygon([(0, 0), (2, 0), (2, 2), (0, 2)])
        b = Polygon([(1, 1), (3, 1), (3, 3), (1, 3)])
        c = Polygon([(5, 5), (6, 5), (6, 6)])
        assert a.intersects(b)
        assert not a.intersects(c)

    def test_distance_to_point(self):
        square = Polygon([(0, 0), (2, 0), (2, 2), (0, 2)])
        assert square.distance_to(Point(1, 1)) == 0.0
        assert square.distance_to(Point(5, 2)) == 3.0

    def test_from_envelope(self):
        poly = Polygon.from_envelope(Envelope(0, 0, 2, 3))
        assert poly.area == 6.0

    def test_pickle_roundtrip(self):
        poly = Polygon([(0, 0), (2, 0), (1, 2)])
        assert pickle.loads(pickle.dumps(poly)) == poly
