"""Baseline system tests: record codec, selection correctness, cost shape."""

import pytest

from repro.baselines import (
    GeoMesaLike,
    GeoSparkLike,
    format_timestamp,
    geo_record_to_instance,
    instance_to_geo_record,
    parse_timestamp,
)
from repro.engine import EngineContext
from repro.geometry import Envelope
from repro.instances import Event, TimeSeries, Trajectory
from repro.temporal import Duration
from tests.conftest import make_events, make_trajectories

SPATIAL = Envelope(2, 2, 7, 7)
TEMPORAL = Duration(10_000, 50_000)


@pytest.fixture
def ctx():
    return EngineContext(default_parallelism=4)


class TestTimestampStrings:
    def test_roundtrip(self):
        for t in (0.0, 1356998400.0, 1374737584.25):
            assert parse_timestamp(format_timestamp(t)) == pytest.approx(t, abs=1e-6)

    def test_format_shape(self):
        s = format_timestamp(1356998400.0)
        assert s.startswith("2013-01-01 00:00:00")


class TestGeoRecords:
    def test_event_roundtrip_preserves_st(self):
        ev = Event.of_point(1.5, 2.5, 1000.5, value="aux", data=7)
        back = geo_record_to_instance(instance_to_geo_record(ev))
        assert back.spatial == ev.spatial
        assert back.temporal.start == pytest.approx(1000.5, abs=1e-6)
        # Identity survives only as a repr string (the baselines' cost).
        assert back.data == "7"

    def test_trajectory_roundtrip(self):
        traj = Trajectory.of_points([(0, 0, 0), (1, 1, 15)], data="t")
        back = geo_record_to_instance(instance_to_geo_record(traj))
        assert isinstance(back, Trajectory)
        assert len(back.entries) == 2
        assert back.data == "'t'"

    def test_collective_rejected(self):
        with pytest.raises(TypeError):
            instance_to_geo_record(TimeSeries.regular(Duration(0, 1), 1.0))


def _expected_ids(instances):
    return sorted(
        repr(inst.data)
        for inst in instances
        if inst.intersects(SPATIAL, TEMPORAL)
    )


class TestGeoSparkLike:
    def test_selection_matches_ground_truth(self, ctx, tmp_path):
        events = make_events(400, seed=61)
        GeoSparkLike.ingest(events, tmp_path / "gs")
        system = GeoSparkLike()
        out = system.select(ctx, tmp_path / "gs", SPATIAL, TEMPORAL)
        assert sorted(ev.data for ev in out.collect()) == _expected_ids(events)

    def test_loads_everything(self, ctx, tmp_path):
        events = make_events(300, seed=62)
        GeoSparkLike.ingest(events, tmp_path / "gs")
        system = GeoSparkLike()
        system.select(ctx, tmp_path / "gs", SPATIAL, TEMPORAL).count()
        stats = system.last_load_stats
        assert stats.records_loaded == 300  # no pruning, ever
        assert stats.partitions_read == stats.partitions_total

    def test_trajectory_selection(self, ctx, tmp_path):
        trajs = make_trajectories(50, seed=63)
        GeoSparkLike.ingest(trajs, tmp_path / "gs")
        out = GeoSparkLike().select(ctx, tmp_path / "gs", SPATIAL, TEMPORAL)
        assert sorted(t.data for t in out.collect()) == _expected_ids(trajs)


class TestGeoMesaLike:
    def test_selection_matches_ground_truth(self, ctx, tmp_path):
        events = make_events(400, seed=64)
        GeoMesaLike.ingest(events, tmp_path / "gm", block_records=64)
        out = GeoMesaLike().select(ctx, tmp_path / "gm", SPATIAL, TEMPORAL)
        assert sorted(ev.data for ev in out.collect()) == _expected_ids(events)

    def test_prunes_blocks_on_selective_query(self, ctx, tmp_path):
        events = make_events(1000, seed=65)
        GeoMesaLike.ingest(events, tmp_path / "gm", block_records=64)
        system = GeoMesaLike()
        small = Envelope(0, 0, 1, 1)
        system.select(ctx, tmp_path / "gm", small, None).count()
        stats = system.last_load_stats
        assert stats.partitions_read < stats.partitions_total

    def test_prunes_more_than_geospark(self, ctx, tmp_path):
        events = make_events(1000, seed=66)
        GeoSparkLike.ingest(events, tmp_path / "gs")
        GeoMesaLike.ingest(events, tmp_path / "gm", block_records=64)
        small = Envelope(0, 0, 2, 2)
        gs = GeoSparkLike()
        gs.select(ctx, tmp_path / "gs", small, None).count()
        gm = GeoMesaLike()
        gm.select(ctx, tmp_path / "gm", small, None).count()
        assert gm.last_load_stats.records_loaded < gs.last_load_stats.records_loaded

    def test_temporal_block_pruning(self, ctx, tmp_path):
        # Records sorted by curve key still carry block time ranges; a
        # disjoint time query must prune everything.
        events = [Event.of_point(1.0, 1.0, float(i), data=i) for i in range(100)]
        GeoMesaLike.ingest(events, tmp_path / "gm", block_records=16)
        system = GeoMesaLike()
        out = system.select(ctx, tmp_path / "gm", None, Duration(1e6, 2e6))
        assert out.count() == 0
        assert system.last_load_stats.partitions_read == 0

    def test_never_misses_records(self, ctx, tmp_path):
        """XZ2 pruning may over-select but must never under-select."""
        trajs = make_trajectories(60, seed=67)
        GeoMesaLike.ingest(trajs, tmp_path / "gm", block_records=8)
        out = GeoMesaLike().select(ctx, tmp_path / "gm", SPATIAL, TEMPORAL)
        assert sorted(t.data for t in out.collect()) == _expected_ids(trajs)
