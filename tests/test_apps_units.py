"""Unit tests for the apps package plumbing."""

import pytest

from repro.apps.common import canonical_id, canonical_key, group_count, naive_cell_scan
from repro.apps.air_road import AirQualityExtractor, build_structure
from repro.apps.case_road_flow import _segment_path, flow_summary
from repro.engine import EngineContext
from repro.geometry import Envelope
from repro.instances import Event, Trajectory
from repro.mapmatching import RoadNetwork
from repro.temporal import Duration


class TestCanonicalIdentity:
    def test_native_int_and_repr_string_agree(self):
        native = Event.of_point(0, 0, 0, data=42)
        baseline = Event.of_point(0, 0, 0, data="42")  # repr round-trip
        assert canonical_id(native) == canonical_id(baseline) == "42"

    def test_native_str_and_quoted_repr_agree(self):
        native = Event.of_point(0, 0, 0, data="trip-1")
        baseline = Event.of_point(0, 0, 0, data="'trip-1'")
        assert canonical_id(native) == canonical_id(baseline) == "'trip-1'"

    def test_canonical_key(self):
        assert canonical_key(7) == "7"
        assert canonical_key("7") == "7"
        assert canonical_key("'x'") == "'x'"
        assert canonical_key("x") == "'x'"


class TestNaiveCellScan:
    def test_scan_matches_structure(self):
        cells = [(Envelope(0, 0, 1, 1), None), (Envelope(1, 0, 2, 1), None)]
        ev = Event.of_point(0.5, 0.5, 0)
        assert naive_cell_scan(cells, ev) == [0]

    def test_temporal_cells(self):
        cells = [(None, Duration(0, 10)), (None, Duration(10, 20))]
        ev = Event.of_point(0, 0, 5)
        assert naive_cell_scan(cells, ev) == [0]
        boundary = Event.of_point(0, 0, 10)
        assert naive_cell_scan(cells, boundary) == [0, 1]

    def test_group_count(self):
        ctx = EngineContext(2)
        rdd = ctx.parallelize([0, 1, 2, 3, 4], 2)
        counts = group_count(rdd, lambda x: [x % 2], 2)
        assert counts == [3, 2]


class TestAirQualityExtractor:
    def test_mean_over_records(self):
        ex = AirQualityExtractor()
        events = [
            Event.of_point(0, 0, 0, value={"pm25": 10.0, "no2": 4.0}),
            Event.of_point(0, 0, 0, value={"pm25": 30.0, "no2": 8.0}),
        ]
        partial = ex.local(events, None, None)
        result = ex.finalize(partial)
        assert result == {"no2": 6.0, "pm25": 20.0}

    def test_merge_then_finalize(self):
        ex = AirQualityExtractor()
        a = ex.local([Event.of_point(0, 0, 0, value={"pm25": 10.0})], None, None)
        b = ex.local([Event.of_point(0, 0, 0, value={"pm25": 20.0})], None, None)
        assert ex.finalize(ex.merge(a, b)) == {"pm25": 15.0}

    def test_empty_cell_is_none(self):
        ex = AirQualityExtractor()
        assert ex.finalize(ex.local([], None, None)) is None

    def test_build_structure_cells(self):
        net = RoadNetwork.grid(0.0, 0.0, 2, 2, spacing_degrees=1.0)
        structure = build_structure(net, Duration(0, 2 * 86_400.0))
        assert structure.n_cells == net.n_segments * 2


class TestRoadFlowHelpers:
    @pytest.fixture
    def net(self):
        return RoadNetwork.grid(0.0, 0.0, 3, 3, spacing_degrees=0.01)

    def test_segment_path_same_segment(self, net):
        assert _segment_path(net, 0, 0) == [0]

    def test_segment_path_connects(self, net):
        # Any two segments in a connected bidirectional grid have a path.
        path = _segment_path(net, net.segments[0].segment_id, net.segments[-1].segment_id)
        assert path[0] == net.segments[0].segment_id
        assert path[-1] == net.segments[-1].segment_id
        # Consecutive path segments must share a junction.
        for a, b in zip(path, path[1:]):
            assert net.segment(a).to_node == net.segment(b).from_node

    def test_flow_summary(self):
        flows = {(1, 8): 3, (2, 8): 1, (1, 9): 2}
        summary = flow_summary(flows)
        assert summary["segments_covered"] == 2
        assert summary["total_flow"] == 6
        assert summary["peak_hour"] == 8

    def test_flow_summary_empty(self):
        assert flow_summary({})["peak_hour"] is None


class TestTrajectorySubtleties:
    def test_baseline_trajectory_predicate_matches_st4ml(self):
        """The selection predicate must agree between the ST4ML instance
        and the baseline round-trip of the same trajectory."""
        from repro.baselines import geo_record_to_instance, instance_to_geo_record

        traj = Trajectory.of_points([(0, 0, 0), (5, 5, 100), (9, 9, 200)], data="t")
        round_tripped = geo_record_to_instance(instance_to_geo_record(traj))
        spatial = Envelope(4, 4, 6, 6)
        temporal = Duration(50, 150)
        assert traj.intersects(spatial, temporal) == round_tripped.intersects(
            spatial, temporal
        )
