"""Tests for the hierarchical tracing / profiling subsystem (repro.obs)."""

from __future__ import annotations

import json
import threading

import pytest

from repro.cli import main
from repro.core.converters import Event2TsConverter
from repro.core.extractors import TsFlowExtractor
from repro.core.pipeline import Pipeline
from repro.core.selector import Selector
from repro.core.structures import TimeSeriesStructure
from repro.engine import EngineContext
from repro.geometry import Envelope
from repro.obs import (
    Tracer,
    chrome_trace,
    current_tracer,
    installed,
    phase,
    profiled,
    text_tree,
    to_jsonl,
    write_trace_files,
)
from repro.temporal import Duration

from .conftest import make_events

T_EXTENT = 86_400.0
BACKENDS = ["sequential", "thread", "process"]


def _run_pipeline(ctx: EngineContext):
    """A small but real Selection → Conversion → Extraction run."""
    events = make_events(200, t_extent=T_EXTENT)
    pipeline = Pipeline(
        selector=Selector(Envelope(0.0, 0.0, 10.0, 10.0), Duration(0.0, T_EXTENT)),
        converter=Event2TsConverter(
            TimeSeriesStructure.of_interval(Duration(0.0, T_EXTENT), 7_200.0)
        ),
        extractor=TsFlowExtractor(),
    )
    return pipeline.run(ctx, events)


class TestTracerCore:
    def test_span_nesting_and_tree(self):
        tracer = Tracer()
        with tracer.span("outer", "phase") as outer:
            with tracer.span("inner", "stage") as inner:
                assert inner.parent_id == outer.span_id
        assert [s.name for s in tracer.roots()] == ["outer"]
        assert [s.name for s in tracer.children(outer)] == ["inner"]
        assert all(s.end is not None for s in tracer.spans)
        assert inner.duration >= 0.0

    def test_add_span_clamps_and_parents(self):
        tracer = Tracer()
        parent = tracer.add_span("stage", "stage", 10.0, 11.0)
        child = tracer.add_span("task", "task", 10.5, 10.2, parent=parent)
        assert child.end == child.start  # end clamped up to start
        assert child.parent_id == parent.span_id

    def test_counters_and_sources(self):
        tracer = Tracer()
        tracer.counter("x", 2)
        tracer.counter("x", 3)
        tracer.register_counter_source("y", lambda: 7)
        assert tracer.counters == {"x": 5, "y": 7}

    def test_phase_idempotent_reuse(self):
        tracer = Tracer()
        with phase("Selection", tracer) as outer:
            with phase("Selection", tracer) as inner:
                assert inner is outer  # reused, not stacked
            with phase("Conversion", tracer) as other:
                assert other is not outer
        assert len(tracer.find("Selection", "phase")) == 1

    def test_phase_without_tracer_yields_none(self):
        assert current_tracer() is None
        with phase("Selection") as span:
            assert span is None

    def test_default_scope_parents_other_threads(self):
        tracer = Tracer()
        seen: dict[str, int | None] = {}

        def from_pool_thread():
            with tracer.span("stage", "stage") as s:
                seen["parent"] = s.parent_id

        with tracer.span("Selection", "phase", default_scope=True) as ph:
            t = threading.Thread(target=from_pool_thread)
            t.start()
            t.join()
        assert seen["parent"] == ph.span_id

    def test_installed_restores_previous(self):
        a, b = Tracer(), Tracer()
        with installed(a):
            assert current_tracer() is a
            with installed(b):
                assert current_tracer() is b
            assert current_tracer() is a
        assert current_tracer() is None


class TestPipelineTracing:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_span_tree_on_every_backend(self, backend):
        tracer = Tracer()
        ctx = EngineContext(default_parallelism=2, backend=backend, tracer=tracer)
        flow = _run_pipeline(ctx)
        assert sum(flow.cell_values()) == 200

        roots = tracer.roots()
        assert [r.name for r in roots] == ["pipeline"]
        phases = [s.name for s in tracer.find(category="phase")]
        assert phases == ["Selection", "Conversion", "Extraction"]
        for ph in tracer.find(category="phase"):
            assert ph.parent_id == roots[0].span_id
            stages = [
                c for c in tracer.children(ph) if c.category == "stage"
            ]
            assert stages, f"phase {ph.name} has no stage span on {backend}"
            for stage in stages:
                assert stage.args["backend"] == backend
                tasks = tracer.children(stage)
                assert len(tasks) == stage.args["partitions"]
                for task in tasks:
                    assert task.category == "task"
                    assert task.start >= 0.0 and task.end >= task.start
                    assert "records_out" in task.args

    def test_task_spans_use_worker_tracks_on_thread_backend(self):
        tracer = Tracer()
        ctx = EngineContext(default_parallelism=4, backend="thread", tracer=tracer)
        _run_pipeline(ctx)
        tracks = {t.track for t in tracer.find(category="task")}
        assert tracks  # at least one named worker track
        assert all(track for track in tracks)

    def test_counters_agree_with_job_metrics(self):
        tracer = Tracer()
        ctx = EngineContext(default_parallelism=2, tracer=tracer)
        _run_pipeline(ctx)
        counters = tracer.counters
        metrics = ctx.metrics.snapshot()
        # This pipeline has no shuffle, so every stage is top-level and the
        # traced stage/task/record counts must match the engine's own books.
        assert counters["stages"] == metrics["stages"]
        assert counters["tasks"] == metrics["tasks"]
        assert counters["records_out"] == metrics["records_out"]
        assert counters["broadcasts"] == metrics["broadcasts"]
        assert counters["broadcast_records"] == metrics["broadcast_records"]
        assert counters["broadcast_bytes"] > 0

    def test_shuffle_counters_match_metrics(self):
        from repro.partitioners import TSTRPartitioner

        tracer = Tracer()
        ctx = EngineContext(default_parallelism=2, tracer=tracer)
        events = make_events(150, t_extent=T_EXTENT)
        selector = Selector(
            Envelope(0.0, 0.0, 10.0, 10.0),
            Duration(0.0, T_EXTENT),
            partitioner=TSTRPartitioner(2, 2),
        )
        selector.select(ctx, events).count()
        counters = tracer.counters
        metrics = ctx.metrics.snapshot()
        assert counters["shuffles"] == metrics["shuffles"] > 0
        assert counters["shuffle_records"] == metrics["shuffle_records"] > 0
        # Nested (shuffle map-side) stages are deliberately untraced, so
        # traced stage/task counts are a subset of the engine totals.
        assert 0 < counters["stages"] <= metrics["stages"]
        assert 0 < counters["tasks"] <= metrics["tasks"]

    def test_selection_phase_counters(self, tmp_path):
        from repro.partitioners import TSTRPartitioner
        from repro.stio import save_dataset

        events = make_events(300, t_extent=T_EXTENT)
        plain_ctx = EngineContext(default_parallelism=4)
        save_dataset(
            tmp_path / "d",
            events,
            "event",
            partitioner=TSTRPartitioner(2, 2),
            ctx=plain_ctx,
        )

        tracer = Tracer()
        ctx = EngineContext(default_parallelism=4, tracer=tracer)
        selector = Selector(Envelope(0.0, 0.0, 4.0, 4.0), Duration(0.0, 30_000.0))
        selector.select(ctx, tmp_path / "d")
        (selection,) = tracer.find("Selection", "phase")
        stats = selector.last_load_stats
        assert selection.args["partitions_scanned"] == stats.partitions_selected
        assert (
            selection.args["partitions_pruned"]
            == stats.partitions_total - stats.partitions_selected
        )
        assert selection.args["partitions_pruned"] > 0
        assert selection.args["rtree_probes"] > 0
        assert tracer.counters["partitions_scanned"] == stats.partitions_selected

    def test_untraced_run_emits_nothing(self):
        ctx = EngineContext(default_parallelism=2)
        assert ctx.tracer is None
        _run_pipeline(ctx)  # must not raise, and no tracer state leaks
        assert current_tracer() is None


class TestExporters:
    def _traced(self):
        tracer = Tracer()
        ctx = EngineContext(default_parallelism=2, tracer=tracer)
        _run_pipeline(ctx)
        return tracer

    def test_chrome_trace_round_trips_json(self):
        tracer = self._traced()
        doc = json.loads(json.dumps(chrome_trace(tracer)))
        events = doc["traceEvents"]
        complete = [e for e in events if e["ph"] == "X"]
        assert len(complete) == len(tracer.spans)
        for e in complete:
            assert e["ts"] >= 0 and e["dur"] >= 0
            assert isinstance(e["args"]["span_id"], int)
        meta = [e for e in events if e["ph"] == "M"]
        assert {"name": "driver"} in [m["args"] for m in meta]
        counter_events = [e for e in events if e["ph"] == "C"]
        assert {e["name"] for e in counter_events} == set(tracer.counters)

    def test_chrome_trace_parent_ids_resolve(self):
        tracer = self._traced()
        doc = chrome_trace(tracer)
        ids = {
            e["args"]["span_id"]
            for e in doc["traceEvents"]
            if e["ph"] == "X"
        }
        for e in doc["traceEvents"]:
            if e["ph"] == "X" and e["args"]["parent_id"] is not None:
                assert e["args"]["parent_id"] in ids

    def test_text_tree_mentions_phases_and_counters(self):
        tracer = self._traced()
        tree = text_tree(tracer)
        for needle in ("pipeline", "Selection", "Conversion", "Extraction", "counters:"):
            assert needle in tree

    def test_jsonl_lines_all_parse(self):
        tracer = self._traced()
        lines = to_jsonl(tracer).strip().split("\n")
        parsed = [json.loads(line) for line in lines]
        kinds = {p["type"] for p in parsed}
        assert kinds == {"span", "counter"}

    def test_write_trace_files(self, tmp_path):
        tracer = self._traced()
        paths = write_trace_files(tracer, tmp_path / "sub" / "run")
        assert set(paths) == {"chrome", "summary", "jsonl"}
        for path in paths.values():
            assert path.exists() and path.stat().st_size > 0
        json.loads(paths["chrome"].read_text())

    def test_profiled_writes_on_exit(self, tmp_path):
        with profiled(tmp_path / "prof") as tracer:
            ctx = EngineContext(default_parallelism=2)
            assert ctx.tracer is tracer  # installed globally
            ctx.parallelize(range(10), 2).count()
        assert (tmp_path / "prof.trace.json").exists()
        assert current_tracer() is None

    def test_profiled_writes_even_on_error(self, tmp_path):
        with pytest.raises(RuntimeError):
            with profiled(tmp_path / "boom"):
                raise RuntimeError("pipeline exploded")
        assert (tmp_path / "boom.trace.json").exists()


SCRIPT = """\
from repro.core.converters import Event2TsConverter
from repro.core.extractors import TsFlowExtractor
from repro.core.pipeline import Pipeline
from repro.core.selector import Selector
from repro.core.structures import TimeSeriesStructure
from repro.engine import EngineContext
from repro.geometry import Envelope
from repro.instances import Event
from repro.temporal import Duration

ctx = EngineContext(default_parallelism=2)
events = [Event.of_point(i % 10, i % 7, i + 0.5, data=i) for i in range(60)]
pipeline = Pipeline(
    selector=Selector(Envelope(0, 0, 10, 10), Duration(0.0, 100.0)),
    converter=Event2TsConverter(
        TimeSeriesStructure.of_interval(Duration(0.0, 100.0), 10.0)
    ),
    extractor=TsFlowExtractor(),
)
flow = pipeline.run(ctx, events)
assert sum(flow.cell_values()) == 60
"""


class TestCli:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_trace_subcommand_exits_zero(self, tmp_path, backend, capsys):
        script = tmp_path / "mini.py"
        script.write_text(SCRIPT)
        out = tmp_path / "traces" / "mini"
        code = main(
            ["--backend", backend, "trace", str(script), "--out", str(out), "--quiet"]
        )
        assert code == 0
        doc = json.loads((tmp_path / "traces" / "mini.trace.json").read_text())
        names = {e["name"] for e in doc["traceEvents"] if e["ph"] == "X"}
        assert {"pipeline", "Selection", "Conversion", "Extraction"} <= names
        backends = {
            e["args"].get("backend")
            for e in doc["traceEvents"]
            if e["ph"] == "X" and e["cat"] == "stage"
        }
        assert backends == {backend}

    def test_trace_missing_script_is_an_error(self, tmp_path, capsys):
        code = main(["trace", str(tmp_path / "nope.py")])
        assert code == 2

    def test_trace_prints_summary_by_default(self, tmp_path, capsys):
        script = tmp_path / "mini.py"
        script.write_text(SCRIPT)
        code = main(["trace", str(script), "--out", str(tmp_path / "t")])
        assert code == 0
        printed = capsys.readouterr().out
        assert "Selection [phase]" in printed
        assert "counters:" in printed

    def test_profile_flag_wraps_other_commands(self, tmp_path, capsys):
        prefix = tmp_path / "profiles" / "gen"
        code = main(
            [
                "--profile",
                str(prefix),
                "generate",
                "nyc",
                "--records",
                "300",
                "--out",
                str(tmp_path / "d"),
            ]
        )
        assert code == 0
        assert (tmp_path / "profiles" / "gen.trace.json").exists()
        assert (tmp_path / "profiles" / "gen.summary.txt").exists()
        assert (tmp_path / "profiles" / "gen.jsonl").exists()

    def test_backend_env_steers_context_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_DEFAULT_BACKEND", "thread")
        assert EngineContext(default_parallelism=2)._backend.name == "thread"
        monkeypatch.delenv("REPRO_DEFAULT_BACKEND")
        assert EngineContext(default_parallelism=2)._backend.name == "sequential"
