"""Checkpointing and forecast-metric tests."""

import numpy as np
import pytest

from repro.engine import Accumulator, EngineContext
from repro.ml.forecast import evaluate_forecast


@pytest.fixture
def ctx():
    return EngineContext(default_parallelism=3)


class TestCheckpoint:
    def test_contents_and_layout_preserved(self, ctx, tmp_path):
        rdd = ctx.parallelize(range(100), 5).map(lambda x: x * 2)
        restored = rdd.checkpoint(tmp_path / "ck")
        assert restored.collect() == rdd.collect()
        assert restored.partition_sizes() == rdd.partition_sizes()

    def test_lineage_truncated(self, ctx, tmp_path):
        calls = Accumulator([], lambda a, b: a + b)
        rdd = ctx.parallelize(range(10), 2).map(lambda x: calls.add([x]) or x)
        restored = rdd.checkpoint(tmp_path / "ck")
        calls.reset()
        restored.count()
        assert calls.value == []  # upstream map never re-runs

    def test_files_written(self, ctx, tmp_path):
        ctx.parallelize(range(10), 4).checkpoint(tmp_path / "ck")
        assert len(list((tmp_path / "ck").glob("checkpoint-*.pkl"))) == 4

    def test_checkpoint_survives_further_transformations(self, ctx, tmp_path):
        restored = ctx.parallelize(range(20), 2).checkpoint(tmp_path / "ck")
        assert restored.map(lambda x: x + 1).sum() == sum(range(20)) + 20


class TestEvaluateForecast:
    def test_perfect_prediction(self):
        y = np.array([1.0, 2.0, 4.0])
        m = evaluate_forecast(y, y)
        assert m["rmse"] == 0.0
        assert m["mae"] == 0.0
        assert m["mape"] == 0.0

    def test_known_errors(self):
        y_true = np.array([10.0, 10.0])
        y_pred = np.array([12.0, 8.0])
        m = evaluate_forecast(y_true, y_pred)
        assert m["rmse"] == pytest.approx(2.0)
        assert m["mae"] == pytest.approx(2.0)
        assert m["mape"] == pytest.approx(20.0)

    def test_zero_targets_skipped_in_mape(self):
        m = evaluate_forecast(np.array([0.0, 10.0]), np.array([1.0, 11.0]))
        assert m["mape"] == pytest.approx(10.0)

    def test_all_zero_targets_mape_nan(self):
        import math

        m = evaluate_forecast(np.zeros(3), np.ones(3))
        assert math.isnan(m["mape"])

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            evaluate_forecast(np.zeros(3), np.zeros(4))
        with pytest.raises(ValueError):
            evaluate_forecast(np.array([]), np.array([]))

    def test_multidim_flattened(self):
        y = np.ones((4, 2))
        m = evaluate_forecast(y, y + 1)
        assert m["mae"] == 1.0
