"""The REPRO2xx lock-discipline rules (`repro.analysis.concurrency`)."""

import textwrap

from repro.analysis import Severity, lint_paths, lint_source

CONCURRENCY = ["REPRO201", "REPRO202", "REPRO203", "REPRO204", "REPRO205", "REPRO206"]


def rules_of(source, **kwargs):
    findings = lint_source(
        textwrap.dedent(source), select=kwargs.pop("select", CONCURRENCY), **kwargs
    )
    return {f.rule for f in findings}


class TestUnguardedSharedMutation:
    def test_unguarded_write_flagged(self):
        assert "REPRO201" in rules_of(
            """
            import threading

            class Store:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.items = {}
                def put(self, k, v):
                    with self._lock:
                        self.items[k] = v
                def drop(self, k):
                    del self.items[k]
            """
        )

    def test_consistently_guarded_clean(self):
        assert rules_of(
            """
            import threading

            class Store:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.items = {}
                def put(self, k, v):
                    with self._lock:
                        self.items[k] = v
                def drop(self, k):
                    with self._lock:
                        self.items.pop(k, None)
            """
        ) == set()

    def test_init_and_getstate_exempt(self):
        # Constructors and (de)serialization hooks touch pre-shared state.
        assert rules_of(
            """
            import threading

            class Store:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.items = {}
                def __getstate__(self):
                    state = dict(self.__dict__)
                    state["_lock"] = None
                    return state
                def put(self, k, v):
                    with self._lock:
                        self.items[k] = v
            """
        ) == set()

    def test_locked_suffix_convention(self):
        # *_locked helpers are contractually called with the lock held.
        assert rules_of(
            """
            import threading

            class Cache:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.entries = {}
                def trim(self):
                    with self._lock:
                        self._evict_locked()
                def _evict_locked(self):
                    self.entries.clear()
            """
        ) == set()

    def test_never_guarded_attr_quiet(self):
        # An attribute no site guards is not part of the lock's domain.
        assert rules_of(
            """
            import threading

            class Worker:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.name = "w"
                def rename(self, name):
                    self.name = name
            """
        ) == set()


class TestUnbalancedAcquire:
    def test_acquire_without_release_error(self):
        findings = lint_source(
            textwrap.dedent(
                """
                import threading
                lock = threading.Lock()

                def bad():
                    lock.acquire()
                    work()
                """
            ),
            select=["REPRO202"],
        )
        assert [f.severity for f in findings] == [Severity.ERROR]

    def test_release_outside_finally_warning(self):
        findings = lint_source(
            textwrap.dedent(
                """
                import threading
                lock = threading.Lock()

                def meh():
                    lock.acquire()
                    work()
                    lock.release()
                """
            ),
            select=["REPRO202"],
        )
        assert [f.severity for f in findings] == [Severity.WARNING]

    def test_try_finally_clean(self):
        assert rules_of(
            """
            import threading
            lock = threading.Lock()

            def ok():
                lock.acquire()
                try:
                    work()
                finally:
                    lock.release()
            """
        ) == set()

    def test_nonblocking_trylock_exempt(self):
        assert rules_of(
            """
            import threading
            lock = threading.Lock()

            def trylock():
                if lock.acquire(blocking=False):
                    lock.release()

            def timed():
                if lock.acquire(timeout=0.5):
                    lock.release()
            """
        ) == set()

    def test_release_never_acquired_warning(self):
        assert "REPRO202" in rules_of(
            """
            import threading
            lock = threading.Lock()

            def handoff():
                lock.release()
            """
        )


class TestBlockingCallUnderLock:
    def test_sleep_socket_pickle_under_lock(self):
        findings = lint_source(
            textwrap.dedent(
                """
                import pickle
                import threading
                import time

                class S:
                    def __init__(self):
                        self._lock = threading.Lock()
                        self.blobs = {}
                    def slow(self, sock, payload):
                        with self._lock:
                            time.sleep(1)
                            sock.recv(1024)
                            self.blobs["x"] = pickle.dumps(payload)
                """
            ),
            select=["REPRO203"],
        )
        assert len(findings) == 3

    def test_blocking_outside_lock_clean(self):
        assert rules_of(
            """
            import threading
            import time

            class S:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.n = 0
                def fast(self):
                    time.sleep(0.1)
                    with self._lock:
                        self.n += 1
            """,
            select=["REPRO203"],
        ) == set()

    def test_condition_wait_on_held_lock_exempt(self):
        # Condition.wait releases the lock it is built on; not a stall.
        assert rules_of(
            """
            import threading

            class Q:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._ready = threading.Condition(self._lock)
                    self.items = []
                def take(self):
                    with self._ready:
                        while not self.items:
                            self._ready.wait()
                        return self.items.pop()
            """,
            select=["REPRO203"],
        ) == set()

    def test_queue_get_under_lock_flagged(self):
        assert "REPRO203" in rules_of(
            """
            import threading
            lock = threading.Lock()

            def drain(work_queue):
                with lock:
                    return work_queue.get()
            """,
            select=["REPRO203"],
        )


class TestLockOrderInconsistency:
    def test_single_module_inversion(self):
        assert "REPRO204" in rules_of(
            """
            import threading
            a = threading.Lock()
            b = threading.Lock()

            def fwd():
                with a:
                    with b:
                        pass

            def bwd():
                with b:
                    with a:
                        pass
            """
        )

    def test_consistent_order_clean(self):
        assert rules_of(
            """
            import threading
            a = threading.Lock()
            b = threading.Lock()

            def one():
                with a:
                    with b:
                        pass

            def two():
                with a:
                    with b:
                        pass
            """
        ) == set()

    def test_cross_module_inversion(self, tmp_path):
        # Class-qualified labels (Broker._state_lock) are shared across
        # modules, so the program-level pass can join per-file graphs:
        # neither module is inconsistent alone, together they cycle.
        (tmp_path / "fwd.py").write_text(
            textwrap.dedent(
                """
                import threading

                class Broker:
                    def __init__(self):
                        self._state_lock = threading.Lock()
                        self._cache_lock = threading.Lock()
                    def publish(self):
                        with self._state_lock:
                            with self._cache_lock:
                                pass
                """
            )
        )
        (tmp_path / "bwd.py").write_text(
            textwrap.dedent(
                """
                import threading

                class Broker:
                    def __init__(self):
                        self._state_lock = threading.Lock()
                        self._cache_lock = threading.Lock()
                    def evict(self):
                        with self._cache_lock:
                            with self._state_lock:
                                pass
                """
            )
        )
        report = lint_paths([tmp_path], select=["REPRO204"])
        assert {f.rule for f in report.all_findings} == {"REPRO204"}
        assert {f.path.rsplit("/", 1)[-1] for f in report.all_findings} == {
            "fwd.py",
            "bwd.py",
        }

    def test_cross_module_inversion_on_local_locks(self, tmp_path):
        (tmp_path / "shared.py").write_text(
            textwrap.dedent(
                """
                import threading
                cache_lock = threading.Lock()
                state_lock = threading.Lock()

                def fwd():
                    with cache_lock:
                        with state_lock:
                            pass
                """
            )
        )
        (tmp_path / "other.py").write_text(
            textwrap.dedent(
                """
                import threading
                cache_lock = threading.Lock()
                state_lock = threading.Lock()

                def bwd():
                    with state_lock:
                        with cache_lock:
                            pass
                """
            )
        )
        # Labels are per-module (path-qualified), so two files using their
        # *own* locks never produce a false shared cycle.
        report = lint_paths([tmp_path], select=["REPRO204"])
        assert [f.rule for f in report.all_findings] == []

    def test_method_level_inversion_in_class(self):
        assert "REPRO204" in rules_of(
            """
            import threading

            class Broker:
                def __init__(self):
                    self._state_lock = threading.Lock()
                    self._cache_lock = threading.Lock()
                def publish(self):
                    with self._state_lock:
                        with self._cache_lock:
                            pass
                def evict(self):
                    with self._cache_lock:
                        with self._state_lock:
                            pass
            """
        )


class TestConditionWaitNoPredicate:
    def test_bare_wait_flagged(self):
        assert "REPRO205" in rules_of(
            """
            import threading

            class Q:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._ready = threading.Condition(self._lock)
                    self.items = []
                def take(self):
                    with self._ready:
                        self._ready.wait()
                        return self.items.pop()
            """
        )

    def test_while_predicate_clean(self):
        assert "REPRO205" not in rules_of(
            """
            import threading

            class Q:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._ready = threading.Condition(self._lock)
                    self.items = []
                def take(self):
                    with self._ready:
                        while not self.items:
                            self._ready.wait()
                        return self.items.pop()
            """
        )

    def test_wait_for_exempt(self):
        assert "REPRO205" not in rules_of(
            """
            import threading

            class Q:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._ready = threading.Condition(self._lock)
                    self.items = []
                def take(self):
                    with self._ready:
                        self._ready.wait_for(lambda: self.items)
                        return self.items.pop()
            """
        )

    def test_event_wait_not_a_condition(self):
        # Event.wait has no predicate contract; must not be flagged.
        assert rules_of(
            """
            import threading
            done = threading.Event()

            def block():
                done.wait()
            """,
            select=["REPRO205"],
        ) == set()


class TestLockInStageClosure:
    def test_captured_lock_error(self):
        findings = lint_source(
            textwrap.dedent(
                """
                import threading
                lock = threading.Lock()

                def stage(rdd):
                    def task(x):
                        with lock:
                            return x
                    return rdd.map(task)
                """
            ),
            select=["REPRO206"],
        )
        assert [f.severity for f in findings] == [Severity.ERROR]

    def test_captured_self_of_lock_owner_warning(self):
        findings = lint_source(
            textwrap.dedent(
                """
                import threading

                class Pipeline:
                    def __init__(self):
                        self._lock = threading.Lock()
                        self.seen = 0
                    def run(self, rdd):
                        return rdd.map(lambda x: (self, x))
                """
            ),
            select=["REPRO206"],
        )
        assert [f.severity for f in findings] == [Severity.WARNING]

    def test_lockless_capture_clean(self):
        assert rules_of(
            """
            def stage(rdd, factor):
                return rdd.map(lambda x: x * factor)
            """,
            select=["REPRO206"],
        ) == set()

    def test_suppression_works(self):
        assert rules_of(
            """
            import threading
            lock = threading.Lock()

            def stage(rdd):
                def task(x):  # repro: noqa[REPRO206]
                    with lock:
                        return x
                return rdd.map(task)
            """,
            select=["REPRO206"],
        ) == set()


class TestSelfLint:
    def test_src_repro_is_clean(self):
        report = lint_paths(["src/repro"], select=CONCURRENCY)
        assert report.files_checked > 100
        assert [str(f) for f in report.all_findings] == []
