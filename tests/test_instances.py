"""ST instance tests: Entry, Instance base, Event, Trajectory."""

import pytest

from repro.geometry import Envelope, Point
from repro.instances import Entry, Event, Trajectory, TrajectoryPoint
from repro.temporal import Duration


class TestEntry:
    def test_fields(self):
        e = Entry(Point(1, 2), Duration(3, 4), value="v")
        assert e.spatial == Point(1, 2)
        assert e.temporal == Duration(3, 4)
        assert e.value == "v"

    def test_type_validation(self):
        with pytest.raises(TypeError):
            Entry("not a geometry", Duration(0, 1))
        with pytest.raises(TypeError):
            Entry(Point(0, 0), 5.0)

    def test_with_value(self):
        e = Entry(Point(0, 0), Duration.instant(1))
        e2 = e.with_value(9)
        assert e2.value == 9 and e.value is None

    def test_st_box(self):
        e = Entry(Point(1, 2), Duration(3, 4))
        assert e.st_box().mins == (1, 2, 3)
        assert e.st_box().maxs == (1, 2, 4)

    def test_equality(self):
        assert Entry(Point(0, 0), Duration(0, 1), 5) == Entry(Point(0, 0), Duration(0, 1), 5)
        assert Entry(Point(0, 0), Duration(0, 1), 5) != Entry(Point(0, 0), Duration(0, 1), 6)


class TestEvent:
    def test_of_point(self):
        ev = Event.of_point(1.0, 2.0, 100.0, value="v", data="id")
        assert ev.spatial == Point(1, 2)
        assert ev.temporal == Duration.instant(100)
        assert ev.value == "v"
        assert ev.data == "id"
        assert len(ev) == 1
        assert ev.is_singular

    def test_extent_properties(self):
        ev = Event.of_point(1, 2, 100)
        assert ev.spatial_extent == Envelope(1, 2, 1, 2)
        assert ev.temporal_extent == Duration.instant(100)

    def test_intersects(self):
        ev = Event.of_point(5, 5, 50)
        assert ev.intersects(Envelope(0, 0, 10, 10), Duration(0, 100))
        assert not ev.intersects(Envelope(6, 6, 10, 10), Duration(0, 100))
        assert not ev.intersects(Envelope(0, 0, 10, 10), Duration(60, 100))

    def test_map_data_keeps_type(self):
        ev = Event.of_point(0, 0, 0, data=3)
        out = ev.map_data(lambda d: d * 2)
        assert isinstance(out, Event)
        assert out.data == 6
        assert ev.data == 3  # original untouched

    def test_map_values(self):
        ev = Event.of_point(0, 0, 0, value=2)
        assert ev.map_values(lambda v: v + 1).value == 3

    def test_replace_guards_entry_count(self):
        ev = Event.of_point(0, 0, 0)
        with pytest.raises(ValueError):
            ev._replace([ev.entry, ev.entry], None)


class TestTrajectory:
    def test_of_points_tuples(self):
        traj = Trajectory.of_points([(0, 0, 0), (1, 0, 10)], data="t")
        assert len(traj) == 2
        assert traj.data == "t"

    def test_time_order_enforced(self):
        with pytest.raises(ValueError):
            Trajectory.of_points([(0, 0, 10), (1, 1, 5)])

    def test_sort_flag(self):
        traj = Trajectory.of_points([(0, 0, 10), (1, 1, 5)], sort=True)
        assert [p.t for p in traj.points()] == [5, 10]

    def test_point_geometry_enforced(self):
        with pytest.raises(TypeError):
            Trajectory([Entry(Envelope(0, 0, 1, 1), Duration.instant(0))])

    def test_needs_entries(self):
        with pytest.raises(ValueError):
            Trajectory.of_points([])

    def test_extents(self):
        traj = Trajectory.of_points([(0, 0, 0), (2, 3, 30)])
        assert traj.spatial_extent == Envelope(0, 0, 2, 3)
        assert traj.temporal_extent == Duration(0, 30)
        assert traj.duration_seconds() == 30

    def test_length_and_speed(self):
        # ~1 degree of latitude = ~111 km, covered in one hour.
        traj = Trajectory.of_points([(0, 0, 0), (0, 1, 3600)])
        assert traj.length_meters() == pytest.approx(111_195, rel=1e-2)
        assert traj.average_speed_kmh() == pytest.approx(111.2, rel=1e-2)
        assert traj.average_speed_ms() == pytest.approx(30.9, rel=1e-2)

    def test_zero_duration_speed_is_zero(self):
        traj = Trajectory.of_points([(0, 0, 5), (1, 1, 5)])
        assert traj.average_speed_ms() == 0.0

    def test_segment_speeds(self):
        traj = Trajectory.of_points([(0, 0, 0), (0, 1, 3600), (0, 1, 3600)])
        speeds = traj.segment_speeds_ms()
        assert len(speeds) == 2
        assert speeds[0] > 0
        assert speeds[1] == 0.0  # zero-duration segment

    def test_intersects_uses_entries_not_mbr(self):
        # L-shaped trajectory whose MBR covers (0..10)^2 but whose points
        # avoid the query corner entirely.
        traj = Trajectory.of_points([(0, 0, 0), (10, 0, 10), (10, 10, 20)])
        assert not traj.intersects(Envelope(0, 9, 1, 10), Duration(0, 100))
        assert traj.intersects(Envelope(9, 9, 10, 10), Duration(0, 100))

    def test_intersects_temporal_per_entry(self):
        traj = Trajectory.of_points([(0, 0, 0), (5, 5, 100)])
        # Spatially matching point is at t=0; temporal window excludes it.
        assert not traj.intersects(Envelope(-1, -1, 1, 1), Duration(50, 150))

    def test_sub_trajectory(self):
        traj = Trajectory.of_points([(0, 0, 0), (1, 1, 10), (2, 2, 20)])
        sub = traj.sub_trajectory(Duration(5, 15))
        assert len(sub.entries) == 1
        assert traj.sub_trajectory(Duration(100, 200)) is None

    def test_resample(self):
        traj = Trajectory.of_points([(0, 0, 0), (10, 0, 100)])
        dense = traj.resampled(10)
        assert len(dense.entries) == 11
        mid = dense.points()[5]
        assert mid.lon == pytest.approx(5.0)

    def test_resample_invalid(self):
        traj = Trajectory.of_points([(0, 0, 0), (1, 0, 1)])
        with pytest.raises(ValueError):
            traj.resampled(0)

    def test_consecutive_pairs(self):
        traj = Trajectory.of_points([(0, 0, 0), (1, 1, 1), (2, 2, 2)])
        pairs = list(traj.consecutive())
        assert len(pairs) == 2

    def test_points_roundtrip(self):
        pts = [TrajectoryPoint(0, 0, 0, "a"), TrajectoryPoint(1, 1, 1, "b")]
        traj = Trajectory.of_points(pts)
        assert traj.points() == pts
