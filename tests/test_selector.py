"""Selector tests (Section 3.1)."""

import pytest

from repro.core import Selector
from repro.engine import EngineContext
from repro.geometry import Envelope
from repro.partitioners import TSTRPartitioner
from repro.stio import save_dataset
from repro.temporal import Duration
from tests.conftest import make_events, make_trajectories


@pytest.fixture
def ctx():
    return EngineContext(default_parallelism=4)


SPATIAL = Envelope(2, 2, 7, 7)
TEMPORAL = Duration(10_000, 50_000)


def expected_ids(instances):
    return sorted(
        repr(inst.data) for inst in instances if inst.intersects(SPATIAL, TEMPORAL)
    )


def selected_ids(rdd):
    return sorted(repr(inst.data) for inst in rdd.collect())


class TestValidation:
    def test_needs_some_range(self):
        with pytest.raises(ValueError):
            Selector()

    def test_spatial_only_ok(self):
        Selector(spatial=SPATIAL)

    def test_temporal_only_ok(self):
        Selector(temporal=TEMPORAL)


class TestSelectionCorrectness:
    def test_from_list(self, ctx):
        events = make_events(400, seed=21)
        out = Selector(SPATIAL, TEMPORAL).select(ctx, events)
        assert selected_ids(out) == expected_ids(events)

    def test_from_rdd(self, ctx):
        events = make_events(400, seed=22)
        rdd = ctx.parallelize(events, 4)
        out = Selector(SPATIAL, TEMPORAL).select(ctx, rdd)
        assert selected_ids(out) == expected_ids(events)

    def test_from_disk(self, ctx, tmp_path):
        events = make_events(400, seed=23)
        save_dataset(tmp_path / "d", events, "event", partitioner=TSTRPartitioner(2, 2), ctx=ctx)
        out = Selector(SPATIAL, TEMPORAL).select(ctx, tmp_path / "d")
        assert selected_ids(out) == expected_ids(events)

    def test_index_and_linear_agree(self, ctx):
        events = make_events(300, seed=24)
        indexed = Selector(SPATIAL, TEMPORAL, index=True).select(ctx, events)
        linear = Selector(SPATIAL, TEMPORAL, index=False).select(ctx, events)
        assert selected_ids(indexed) == selected_ids(linear)

    def test_trajectories_entry_level_predicate(self, ctx):
        trajs = make_trajectories(80, seed=25)
        out = Selector(SPATIAL, TEMPORAL).select(ctx, trajs)
        assert selected_ids(out) == expected_ids(trajs)

    def test_spatial_only_selection(self, ctx):
        events = make_events(200, seed=26)
        out = Selector(spatial=SPATIAL).select(ctx, events)
        expected = sorted(
            repr(ev.data)
            for ev in events
            if SPATIAL.contains_point(ev.spatial.x, ev.spatial.y)
        )
        assert selected_ids(out) == expected

    def test_temporal_only_selection(self, ctx):
        events = make_events(200, seed=27)
        out = Selector(temporal=TEMPORAL).select(ctx, events)
        expected = sorted(
            repr(ev.data) for ev in events if TEMPORAL.contains(ev.temporal.start)
        )
        assert selected_ids(out) == expected


class TestPartitioningStage:
    def test_partitioner_applied_after_filter(self, ctx):
        events = make_events(500, seed=28)
        selector = Selector(SPATIAL, TEMPORAL, partitioner=TSTRPartitioner(2, 3))
        out = selector.select(ctx, events)
        assert out.num_partitions == selector.partitioner.num_partitions
        assert selected_ids(out) == expected_ids(events)

    def test_num_partitions_repartitions(self, ctx):
        events = make_events(200, seed=29)
        out = Selector(SPATIAL, TEMPORAL, num_partitions=7).select(ctx, events)
        assert out.num_partitions == 7


class TestMetadataPruning:
    def test_load_stats_populated(self, ctx, tmp_path):
        events = make_events(600, seed=30)
        save_dataset(
            tmp_path / "d", events, "event", partitioner=TSTRPartitioner(3, 3), ctx=ctx
        )
        selector = Selector(Envelope(0, 0, 2, 2), Duration(0, 20_000))
        out = selector.select(ctx, tmp_path / "d")
        out.count()  # force load
        stats = selector.last_load_stats
        assert stats is not None
        assert stats.partitions_read < stats.partitions_total
        assert stats.records_loaded < 600

    def test_use_metadata_false_loads_everything(self, ctx, tmp_path):
        events = make_events(300, seed=31)
        save_dataset(
            tmp_path / "d", events, "event", partitioner=TSTRPartitioner(2, 2), ctx=ctx
        )
        selector = Selector(Envelope(0, 0, 1, 1), Duration(0, 10_000))
        out = selector.select(ctx, tmp_path / "d", use_metadata=False)
        out.count()
        stats = selector.last_load_stats
        assert stats.partitions_read == stats.partitions_total
        assert stats.records_loaded == 300

    def test_pruned_equals_unpruned_result(self, ctx, tmp_path):
        events = make_events(400, seed=32)
        save_dataset(
            tmp_path / "d", events, "event", partitioner=TSTRPartitioner(3, 2), ctx=ctx
        )
        pruned = Selector(SPATIAL, TEMPORAL).select(ctx, tmp_path / "d")
        full = Selector(SPATIAL, TEMPORAL).select(
            ctx, tmp_path / "d", use_metadata=False
        )
        assert selected_ids(pruned) == selected_ids(full)
