"""GridIndex unit + property tests — the regular-structure shortcut."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.index import GridIndex, STBox


@pytest.fixture
def grid3d():
    return GridIndex(STBox((0, 0, 0), (10, 10, 100)), (5, 5, 10))


class TestConstruction:
    def test_n_cells(self, grid3d):
        assert grid3d.n_cells == 250

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            GridIndex(STBox((0, 0), (1, 1)), (2,))

    def test_zero_cells_rejected(self):
        with pytest.raises(ValueError):
            GridIndex(STBox((0, 0), (1, 1)), (0, 2))

    def test_degenerate_extent_rejected(self):
        with pytest.raises(ValueError):
            GridIndex(STBox((0, 0), (0, 1)), (2, 2))


class TestFlattening:
    def test_roundtrip(self, grid3d):
        for cell_id in (0, 1, 17, 249):
            assert grid3d.flatten(grid3d.unflatten(cell_id)) == cell_id

    def test_c_order(self):
        grid = GridIndex(STBox((0, 0), (2, 3)), (2, 3))
        # last dim fastest
        assert grid.flatten((0, 0)) == 0
        assert grid.flatten((0, 1)) == 1
        assert grid.flatten((1, 0)) == 3

    def test_out_of_range(self, grid3d):
        with pytest.raises(IndexError):
            grid3d.unflatten(250)


class TestCellBoxes:
    def test_cell_boxes_tile_extent(self):
        grid = GridIndex(STBox((0, 0), (4, 2)), (4, 2))
        boxes = grid.all_cell_boxes()
        assert len(boxes) == 8
        total = sum(b.volume() for b in boxes)
        assert total == pytest.approx(8.0)
        merged = STBox.merge_all(boxes)
        assert merged == grid.extent

    def test_cell_box_shape(self):
        grid = GridIndex(STBox((0,), (24,)), (24,))
        assert grid.cell_box(0) == STBox((0,), (1,))
        assert grid.cell_box(23) == STBox((23,), (24,))


class TestCandidates:
    def test_interior_query(self):
        grid = GridIndex(STBox((0, 0), (10, 10)), (5, 5))
        cells = grid.candidate_cells(STBox((2.5, 2.5), (4.5, 4.5)))
        expected = [
            i
            for i in range(25)
            if grid.cell_box(i).intersects(STBox((2.5, 2.5), (4.5, 4.5)))
        ]
        assert sorted(cells) == expected

    def test_boundary_touch_includes_both_sides(self):
        grid = GridIndex(STBox((0,), (10,)), (5,))
        # Query exactly on the 2.0 boundary: closed semantics → cells 0 and 1.
        cells = grid.candidate_cells(STBox((2.0,), (2.0,)))
        assert sorted(cells) == [0, 1]

    def test_query_outside_extent(self):
        grid = GridIndex(STBox((0,), (10,)), (5,))
        assert grid.candidate_cells(STBox((11,), (12,))) == []

    def test_query_clipped_to_extent(self):
        grid = GridIndex(STBox((0,), (10,)), (5,))
        cells = grid.candidate_cells(STBox((-5,), (3,)))
        assert sorted(cells) == [0, 1]

    def test_dim_mismatch(self):
        grid = GridIndex(STBox((0,), (10,)), (5,))
        with pytest.raises(ValueError):
            grid.candidate_cells(STBox((0, 0), (1, 1)))


class TestPointLookup:
    def test_cell_of_point(self):
        grid = GridIndex(STBox((0, 0), (10, 10)), (5, 5))
        assert grid.cell_of_point((0.5, 0.5)) == 0
        assert grid.cell_of_point((9.9, 9.9)) == 24

    def test_max_boundary_falls_in_last_cell(self):
        grid = GridIndex(STBox((0,), (10,)), (5,))
        assert grid.cell_of_point((10.0,)) == 4

    def test_outside_is_none(self):
        grid = GridIndex(STBox((0,), (10,)), (5,))
        assert grid.cell_of_point((10.5,)) is None
        assert grid.cell_of_point((-0.1,)) is None


dim_size = st.integers(1, 6)
coord = st.floats(min_value=-5, max_value=15, allow_nan=False)


class TestGridProperties:
    @given(dim_size, dim_size, coord, coord, coord, coord)
    @settings(max_examples=100, deadline=None)
    def test_candidates_match_brute_force(self, nx, ny, a, b, c, d):
        grid = GridIndex(STBox((0, 0), (10, 10)), (nx, ny))
        x1, x2 = sorted((a, c))
        y1, y2 = sorted((b, d))
        q = STBox((x1, y1), (x2, y2))
        expected = sorted(
            i for i in range(grid.n_cells) if grid.cell_box(i).intersects(q)
        )
        assert sorted(grid.candidate_cells(q)) == expected

    @given(dim_size, coord)
    @settings(max_examples=60)
    def test_point_lookup_consistent_with_cell_box(self, n, x):
        grid = GridIndex(STBox((0,), (10,)), (n,))
        cell = grid.cell_of_point((x,))
        if cell is None:
            assert x < 0 or x > 10
        else:
            box = grid.cell_box(cell)
            assert box.mins[0] - 1e-9 <= x <= box.maxs[0] + 1e-9
