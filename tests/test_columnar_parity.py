"""Property-based parity: columnar kernels vs the scalar reference paths.

The columnar subsystem's contract is *bit-for-bit agreement* with the
scalar implementations it accelerates: identical selected instance sets,
identical allocation cells, identical ``AllocationStats`` /
``RTreeStats.candidates`` counts — on randomized boxes, on queries that
sit exactly on cell boundaries (closed-interval semantics), and under
``duplicate=True`` replica fan-out.  These tests exercise each kernel
against its scalar twin, then the full selection pipeline on all three
execution backends.
"""

from __future__ import annotations

from collections import Counter
from itertools import product

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Selector
from repro.core.converters.base import AllocationStats, allocate
from repro.core.structures import (
    RasterStructure,
    SpatialMapStructure,
    TimeSeriesStructure,
)
from repro.columnar import BoxTable, PackedRTree, packed_tree_from_boxes
from repro.columnar.cache import PartitionIndexCache, selection_cache
from repro.engine import EngineContext
from repro.geometry import Envelope
from repro.index.boxes import STBox
from repro.index.grid import GridIndex
from repro.index.rtree import RTree
from repro.instances import Event
from repro.partitioners import (
    HashPartitioner,
    STRPartitioner,
    TBalancePartitioner,
    TSTRPartitioner,
)
from repro.temporal import Duration

from .conftest import make_events, make_trajectories

ALL_BACKENDS = ["sequential", "thread", "process"]

coord = st.floats(min_value=-50, max_value=50, allow_nan=False)
timestamp = st.floats(min_value=0, max_value=1000, allow_nan=False)


@st.composite
def event_sets(draw, min_size=5, max_size=60):
    n = draw(st.integers(min_size, max_size))
    return [
        Event.of_point(draw(coord), draw(coord), draw(timestamp), data=i)
        for i in range(n)
    ]


@st.composite
def st_boxes(draw, ndim=3):
    lows = [draw(coord) for _ in range(ndim)]
    spans = [draw(st.floats(min_value=0, max_value=40, allow_nan=False)) for _ in range(ndim)]
    return STBox(tuple(lows), tuple(lo + s for lo, s in zip(lows, spans)))


def _identities(instances) -> Counter:
    return Counter(inst.identity() for inst in instances)


class TestBoxTableParity:
    @given(event_sets(), st_boxes())
    @settings(max_examples=50, deadline=None)
    def test_candidates_match_linear_scan(self, events, box):
        table = BoxTable.from_instances(events)
        expected = [i for i, e in enumerate(events) if e.st_box().intersects(box)]
        assert table.candidate_rows(box).tolist() == expected

    def test_boundary_touching_query_matches(self):
        events = [Event.of_point(1.0, 2.0, 3.0, data=0)]
        table = BoxTable.from_instances(events)
        # Query faces exactly on the event's coordinates: closed intervals
        # on every side, so each touching face still matches.
        for box in (
            STBox((1.0, 2.0, 3.0), (5.0, 5.0, 5.0)),
            STBox((-5.0, -5.0, -5.0), (1.0, 2.0, 3.0)),
        ):
            assert table.candidate_rows(box).tolist() == [0]
            assert events[0].st_box().intersects(box)

    def test_empty_table(self):
        table = BoxTable.from_instances([])
        assert len(table) == 0
        assert table.candidate_rows(STBox((0, 0, 0), (1, 1, 1))).tolist() == []

    def test_box_exact_marks_point_events(self):
        events = make_events(5) + make_trajectories(3)
        table = BoxTable.from_instances(events)
        assert table.box_exact[:5].all()
        assert not table.box_exact[5:].any()


class TestPackedRTreeParity:
    @given(event_sets(min_size=1), st.lists(st_boxes(), min_size=1, max_size=5))
    @settings(max_examples=50, deadline=None)
    def test_query_sets_and_candidate_counts_match(self, events, queries):
        entries = [(e.st_box(), i) for i, e in enumerate(events)]
        scalar = RTree.build(entries, capacity=4)
        packed = packed_tree_from_boxes([b for b, _ in entries], capacity=4)
        for box in queries:
            scalar_hits = sorted(scalar.query(box))
            packed_hits = packed.query_rows(box).tolist()
            assert packed_hits == scalar_hits
        # candidates is shape-independent, so the two trees agree exactly;
        # node/entry test counts are shape-dependent and may not.
        assert packed.stats.candidates == scalar.stats.candidates
        assert packed.stats.queries == scalar.stats.queries

    def test_batch_matches_singles_and_tiny_trees(self):
        for n in (0, 1, 2, 5, 100):
            events = make_events(n)
            boxes = [e.st_box() for e in events]
            packed = packed_tree_from_boxes(boxes, capacity=4)
            queries = [
                STBox((0, 0, 0), (5, 5, 50_000)),
                STBox((90, 90, 0), (91, 91, 1)),
            ]
            batch = packed.query_batch(queries)
            for box, rows in zip(queries, batch):
                assert rows.tolist() == packed.query_rows(box).tolist()
                expected = sorted(i for i, b in enumerate(boxes) if b.intersects(box))
                assert rows.tolist() == expected

    def test_rtree_query_batch_folds_stats(self):
        events = make_events(50)
        tree = RTree.build((e.st_box(), e) for e in events)
        box = STBox((0, 0, 0), (5, 5, 50_000))
        batch = tree.query_batch([box, box])
        singles = tree.query(box)
        assert _identities(batch[0]) == _identities(batch[1]) == _identities(singles)
        assert tree.stats.queries == 3
        assert tree.stats.candidates == 2 * len(batch[0]) + len(singles)

    def test_packed_tree_pickles(self):
        import pickle

        packed = packed_tree_from_boxes([e.st_box() for e in make_events(40)])
        clone = pickle.loads(pickle.dumps(packed))
        box = STBox((0, 0, 0), (5, 5, 50_000))
        assert clone.query_rows(box).tolist() == packed.query_rows(box).tolist()


class TestGridRangeKernelParity:
    @given(
        st.integers(1, 3),
        st.lists(st.floats(min_value=-15, max_value=15, allow_nan=False), min_size=2, max_size=6),
    )
    @settings(max_examples=60, deadline=None)
    def test_ranges_match_candidate_cells(self, ndim, raw):
        import numpy as np

        grid = GridIndex(STBox((0.0,) * ndim, (10.0,) * ndim), (4,) * ndim)
        step = 10.0 / 4
        # Mix arbitrary coordinates with exact cell-boundary multiples so
        # the boundary-touch decrement path is exercised every run.
        values = raw + [0.0, step, 2 * step, 10.0]
        boxes = []
        for lo in values:
            for hi in values:
                if hi >= lo:
                    boxes.append((tuple([lo] * ndim), tuple([hi] * ndim)))
        mins = np.array([b[0] for b in boxes])
        maxs = np.array([b[1] for b in boxes])
        firsts, lasts = grid.candidate_ranges_batch(mins, maxs)
        for i, (lo, hi) in enumerate(boxes):
            expected = grid.candidate_cells(STBox(lo, hi))
            f, l = firsts[i].tolist(), lasts[i].tolist()
            if any(a > b for a, b in zip(f, l)):
                got = []
            else:
                got = [
                    grid.flatten(idx)
                    for idx in product(*(range(a, b + 1) for a, b in zip(f, l)))
                ]
            assert got == expected

    def test_unbounded_sentinels_do_not_overflow(self):
        import numpy as np

        grid = GridIndex(STBox((0.0,), (10.0,)), (5,))
        mins = np.array([[-1.0e18]])
        maxs = np.array([[1.0e18]])
        firsts, lasts = grid.candidate_ranges_batch(mins, maxs)
        assert firsts[0, 0] == 0
        assert lasts[0, 0] == 4


def _cell_data(cells):
    return [[inst.identity() for inst in cell] for cell in cells]


class TestAllocateParity:
    @pytest.mark.parametrize(
        "structure",
        [
            TimeSeriesStructure.regular(Duration(0, 86_400), 24),
            TimeSeriesStructure([Duration(0, 10_000), Duration(10_000, 86_400)]),
            SpatialMapStructure.regular(Envelope(0, 0, 10, 10), 4, 3),
            SpatialMapStructure(Envelope(0, 0, 10, 10).split(3, 2)),
            RasterStructure.regular(Envelope(0, 0, 10, 10), Duration(0, 86_400), 3, 3, 4),
            RasterStructure.of_product(
                Envelope(0, 0, 10, 10).split(2, 2), Duration(0, 86_400).split(3)
            ),
        ],
        ids=["ts-regular", "ts-irregular", "sm-regular", "sm-irregular", "raster-regular", "raster-irregular"],
    )
    @pytest.mark.parametrize("method", ["auto", "rtree", "naive"])
    def test_cells_and_stats_match(self, structure, method):
        instances = make_events(60) + make_trajectories(10)
        scalar_stats = AllocationStats()
        columnar_stats = AllocationStats()
        scalar = allocate(instances, structure, method, scalar_stats, use_columnar=False)
        columnar = allocate(instances, structure, method, columnar_stats, use_columnar=True)
        assert _cell_data(columnar) == _cell_data(scalar)
        assert columnar_stats.snapshot() == scalar_stats.snapshot()

    def test_regular_method_on_regular_structure(self):
        structure = TimeSeriesStructure.regular(Duration(0, 86_400), 24)
        instances = make_events(40)
        s1, s2 = AllocationStats(), AllocationStats()
        scalar = allocate(instances, structure, "regular", s1, use_columnar=False)
        columnar = allocate(instances, structure, "regular", s2, use_columnar=True)
        assert _cell_data(columnar) == _cell_data(scalar)
        assert s1.snapshot() == s2.snapshot()

    def test_regular_method_rejected_on_irregular(self):
        structure = SpatialMapStructure(Envelope(0, 0, 10, 10).split(3, 2))
        with pytest.raises(ValueError, match="regular method"):
            allocate(make_events(5), structure, "regular", use_columnar=True)

    def test_unknown_method_rejected(self):
        structure = TimeSeriesStructure.regular(Duration(0, 86_400), 4)
        with pytest.raises(ValueError, match="unknown allocation method"):
            allocate(make_events(5), structure, "bogus", use_columnar=True)

    def test_boundary_sitting_events(self):
        # Events exactly on cell edges must land in both neighbors on both
        # paths (closed-interval grids).
        structure = SpatialMapStructure.regular(Envelope(0, 0, 10, 10), 4, 4)
        events = [Event.of_point(2.5, 5.0, 100.0, data=0), Event.of_point(0.0, 0.0, 0.0, data=1)]
        scalar = allocate(events, structure, "auto", use_columnar=False)
        columnar = allocate(events, structure, "auto", use_columnar=True)
        assert _cell_data(columnar) == _cell_data(scalar)
        assert sum(len(c) for c in columnar) == 5  # edge event in 4 cells, corner in 1


class TestAssignBatchParity:
    @given(event_sets(min_size=10), st.integers(2, 4), st.integers(2, 4))
    @settings(max_examples=30, deadline=None)
    def test_tstr(self, events, gt, gs):
        p = TSTRPartitioner(gt, gs)
        p.fit(events)
        assert p.assign_batch(events) == [p.assign(e) for e in events]

    @given(event_sets(min_size=10), st.integers(2, 9))
    @settings(max_examples=30, deadline=None)
    def test_str(self, events, n):
        p = STRPartitioner(n)
        p.fit(events)
        assert p.assign_batch(events) == [p.assign(e) for e in events]

    @given(event_sets(min_size=10), st.integers(2, 6))
    @settings(max_examples=30, deadline=None)
    def test_tbalance(self, events, n):
        p = TBalancePartitioner(n)
        p.fit(events)
        assert p.assign_batch(events) == [p.assign(e) for e in events]

    def test_hash(self):
        events = make_events(50)
        p = HashPartitioner(7)
        p.fit(events)
        assert p.assign_batch(events) == [p.assign(e) for e in events]

    def test_cut_sitting_centers(self):
        # Fit, then craft events whose centers sit exactly on fitted cuts;
        # searchsorted(side="right") must agree with bisect_right there.
        events = make_events(80)
        p = TSTRPartitioner(3, 4)
        p.fit(events)
        extras = [
            Event.of_point(5.0, 5.0, cut, data=1000 + i)
            for i, cut in enumerate(p._t_cuts)
        ]
        for tiling in p._tilings:
            for cut in tiling.x_cuts:
                extras.append(Event.of_point(cut, 5.0, 40_000.0, data=len(extras)))
        assert p.assign_batch(extras) == [p.assign(e) for e in extras]


class TestPartitionIndexCache:
    def test_identity_keyed_hits_and_lru(self):
        cache = PartitionIndexCache(capacity=2)
        p1, p2, p3 = [1], [2], [3]
        v1, hit = cache.get_or_build(p1, "k", lambda p: object())
        assert not hit
        v1b, hit = cache.get_or_build(p1, "k", lambda p: object())
        assert hit and v1b is v1
        cache.get_or_build(p2, "k", lambda p: object())
        cache.get_or_build(p3, "k", lambda p: object())  # evicts p1
        _, hit = cache.get_or_build(p1, "k", lambda p: object())
        assert not hit
        assert cache.hits == 1 and cache.misses == 4

    def test_selection_reuses_partition_index(self):
        cache = selection_cache()
        cache.clear()
        before = (cache.hits, cache.misses)
        ctx = EngineContext(default_parallelism=2)
        events = make_events(200)
        rdd = ctx.parallelize(events, 2)
        sel = Selector(spatial=Envelope(0, 0, 5, 5), temporal=Duration(0, 50_000))
        first = sel.select(ctx, rdd).collect()
        assert sel.index_cache_misses.value == 2
        assert sel.index_cache_hits.value == 0
        second = sel.select(ctx, rdd).collect()
        assert sel.index_cache_hits.value == 2
        assert sel.index_cache_misses.value == 0
        assert _identities(first) == _identities(second)
        assert cache.hits > before[0]


class TestSelectionParityAcrossBackends:
    def _dataset(self):
        events = make_events(300)
        # Boundary-sitting extras: exactly on the query-box faces below.
        events.append(Event.of_point(6.0, 6.0, 60_000.0, data=9001))
        events.append(Event.of_point(2.0, 2.0, 10_000.0, data=9002))
        return events

    def _select(self, backend: str, use_columnar: bool, index: bool, duplicate: bool):
        ctx = EngineContext(default_parallelism=4, backend=backend)
        try:
            partitioner = TSTRPartitioner(2, 4) if duplicate else None
            sel = Selector(
                spatial=Envelope(2.0, 2.0, 6.0, 6.0),
                temporal=Duration(10_000.0, 60_000.0),
                partitioner=partitioner,
                index=index,
                duplicate=duplicate,
                use_columnar=use_columnar,
            )
            result = sel.select(ctx, ctx.parallelize(self._dataset(), 4)).collect()
            return Counter(
                (inst.identity(), getattr(inst, "dup_primary", True))
                for inst in result
            )
        finally:
            ctx.backend.stop()

    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    @pytest.mark.parametrize("index", [True, False])
    def test_plain_selection_parity(self, backend, index):
        scalar = self._select(backend, use_columnar=False, index=index, duplicate=False)
        columnar = self._select(backend, use_columnar=True, index=index, duplicate=False)
        assert columnar == scalar
        assert sum(scalar.values()) > 0

    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_duplicate_mode_parity(self, backend):
        scalar = self._select(backend, use_columnar=False, index=True, duplicate=True)
        columnar = self._select(backend, use_columnar=True, index=True, duplicate=True)
        assert columnar == scalar
        # Replica fan-out must actually occur for the comparison to bite:
        # primaries of every identity, replicas preserved identically.
        assert sum(scalar.values()) > 0

    def test_probe_counter_reports_work(self):
        ctx = EngineContext(default_parallelism=2)
        sel = Selector(spatial=Envelope(0, 0, 5, 5), temporal=Duration(0, 50_000))
        sel.select(ctx, ctx.parallelize(make_events(200), 2)).collect()
        assert sel.rtree_probes.value > 0


class TestConversionParityAcrossBackends:
    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_event_to_ts_parity(self, backend):
        from repro.core.converters import Event2TsConverter

        structure = TimeSeriesStructure.regular(Duration(0, 86_400), 24)
        results = {}
        for use_columnar in (False, True):
            ctx = EngineContext(default_parallelism=4, backend=backend)
            try:
                conv = Event2TsConverter(
                    structure, use_columnar=use_columnar
                )
                rdd = ctx.parallelize(make_events(200), 4)
                merged = conv.convert_merged(rdd, combine=lambda a, b: a + b)
                results[use_columnar] = [
                    sorted(inst.identity() for inst in cell)
                    for cell in merged.cell_values()
                ]
            finally:
                ctx.backend.stop()
        assert results[True] == results[False]
