"""The fault-injection & recovery subsystem.

Contracts under test:

* :class:`FaultPlan` decisions are pure functions of (seed, site) — the
  same plan fires the same faults in every process, on every backend —
  and injected faults never outlast the retry/recovery machinery (the
  ``max_attempt`` convergence guarantee).
* The unified :class:`RetryPolicy` reproduces the historical attempt-cap
  semantics and adds backoff, deadline, and stage-budget behavior.
* Worker loss on the process backend salvages finished outcomes and
  recomputes only the lost partitions; repeated loss demotes the backend
  down the ladder; either way the job's *result* is unchanged.
* Corrupt on-disk blocks either surface as :class:`CorruptPartitionError`
  or quarantine to an empty partition, by caller choice.
* Pipeline checkpoint/resume is bit-identical to an uninterrupted run on
  every backend.
* Speculative-copy failures are charged exactly once (the double-meter
  regression).

Everything shipped to process workers is module-level, so the suite also
passes without cloudpickle installed.
"""

from __future__ import annotations

import pickle

import pytest

from repro.core import Pipeline, Selector, TimeSeriesStructure
from repro.core.converters import Event2TsConverter
from repro.core.extractors import TsFlowExtractor
from repro.datasets import NYC_BBOX, generate_nyc_events
from repro.datasets.common import EPOCH_2013
from repro.engine import (
    CorruptPartitionError,
    EngineContext,
    EngineError,
    FaultPlan,
    FaultRule,
    InjectedWorkerLoss,
    PipelineCheckpoint,
    RecoveryOptions,
    RetryBudgetExhausted,
    RetryPolicy,
    TaskFailure,
)
from repro.engine.exec.base import run_task_attempts
from repro.engine.exec.process import _ChunkState, _note_copy_failure
from repro.engine.faults import (
    COMPLETE_MARKER,
    RetryBudget,
    corrupt_bytes,
    demotion_target,
)
from repro.stio import StDataset, save_dataset
from repro.temporal import Duration

ALL_BACKENDS = ["sequential", "thread", "process"]
WORKERS = 2


def make_ctx(backend: str = "sequential", **kwargs) -> EngineContext:
    options = kwargs.pop("backend_options", {})
    if backend == "process":
        options.setdefault("warmup", False)
    return EngineContext(
        default_parallelism=WORKERS,
        backend=backend,
        backend_options=options or None,
        **kwargs,
    )


def identity_task(partition: int) -> list:
    return [partition * 10 + i for i in range(3)]


def double(x: int) -> int:
    return 2 * x


# -- FaultPlan determinism -------------------------------------------------------


class TestFaultPlan:
    def test_decisions_are_deterministic(self):
        a = FaultPlan([FaultRule("task_error", probability=0.5, max_attempt=99)], seed=7)
        b = FaultPlan([FaultRule("task_error", probability=0.5, max_attempt=99)], seed=7)
        sites = [(s, p, att) for s in range(3) for p in range(8) for att in (1, 2)]
        decisions = [a.decide("task_error", *site) for site in sites]
        assert decisions == [b.decide("task_error", *site) for site in sites]
        assert any(d is not None for d in decisions)
        assert any(d is None for d in decisions)

    def test_decisions_survive_pickling(self):
        plan = FaultPlan([FaultRule("delay", probability=0.4, delay_seconds=0.01)], seed=3)
        clone = pickle.loads(pickle.dumps(plan))
        for partition in range(10):
            assert (clone.decide("delay", 1, partition, 1) is None) == (
                plan.decide("delay", 1, partition, 1) is None
            )
        # Worker-local mutable state does not travel.
        plan.corrupt_read("part-00000.pkl", b"xx")
        restored = pickle.loads(pickle.dumps(plan))
        assert restored._read_counts == {}
        assert restored.fired == []

    def test_seed_changes_decisions(self):
        rule = FaultRule("task_error", probability=0.5, max_attempt=99)
        sites = [(1, p, 1) for p in range(64)]
        fires = lambda seed: [  # noqa: E731
            FaultPlan([rule], seed=seed).decide("task_error", *s) is not None for s in sites
        ]
        assert fires(1) != fires(2)

    def test_max_attempt_gates_refiring(self):
        plan = FaultPlan([FaultRule("task_error")])  # max_attempt=1, p=1.0
        assert plan.decide("task_error", 1, 0, 1) is not None
        assert plan.decide("task_error", 1, 0, 2) is None

    def test_json_round_trip(self):
        plan = FaultPlan.chaos(seed=5, task_error=0.2, worker_kill=0.1, delay=0.3)
        clone = FaultPlan.from_spec(plan.to_json())
        assert clone.seed == plan.seed
        assert clone.rules == plan.rules

    def test_from_spec_accepts_path_and_dict(self, tmp_path):
        plan = FaultPlan([FaultRule("corrupt_read", probability=0.5)], seed=11)
        path = tmp_path / "plan.json"
        path.write_text(plan.to_json())
        assert FaultPlan.from_spec(str(path)).rules == plan.rules
        assert FaultPlan.from_spec(plan.to_dict()).rules == plan.rules
        assert FaultPlan.from_spec(None) is None
        assert FaultPlan.from_spec(plan) is plan

    def test_from_env(self, monkeypatch):
        plan = FaultPlan([FaultRule("task_error", partition=2)], seed=9)
        monkeypatch.setenv("REPRO_FAULT_PLAN", plan.to_json())
        ctx = EngineContext(default_parallelism=2)
        try:
            assert ctx.fault_plan is not None
            assert ctx.fault_plan.rules == plan.rules
        finally:
            ctx.stop()
        monkeypatch.delenv("REPRO_FAULT_PLAN")
        assert FaultPlan.from_env() is None

    def test_rule_validation(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultRule("meteor_strike")
        with pytest.raises(ValueError, match="probability"):
            FaultRule("task_error", probability=1.5)
        with pytest.raises(ValueError, match="max_attempt"):
            FaultRule("task_error", max_attempt=0)

    def test_corrupt_bytes_defeats_pickle(self):
        raw = pickle.dumps(list(range(100)))
        mangled = corrupt_bytes(raw)
        assert mangled != raw
        assert corrupt_bytes(raw) == mangled  # deterministic
        with pytest.raises(Exception):
            pickle.loads(mangled)


# -- RetryPolicy / RetryBudget ---------------------------------------------------


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_seconds=-1)
        with pytest.raises(ValueError):
            RetryPolicy(jitter_fraction=2.0)
        with pytest.raises(ValueError):
            RetryPolicy(stage_attempt_budget=0)

    def test_backoff_is_exponential_and_capped(self):
        policy = RetryPolicy(backoff_seconds=0.01, backoff_multiplier=2.0, backoff_max_seconds=0.03)
        assert policy.delay_before_retry(1) == pytest.approx(0.01)
        assert policy.delay_before_retry(2) == pytest.approx(0.02)
        assert policy.delay_before_retry(3) == pytest.approx(0.03)
        assert policy.delay_before_retry(4) == pytest.approx(0.03)
        assert RetryPolicy(backoff_seconds=0.0).delay_before_retry(1) == 0.0

    def test_jitter_is_deterministic_and_bounded(self):
        policy = RetryPolicy(backoff_seconds=0.01, jitter_fraction=0.5)
        delays = {policy.delay_before_retry(1, partition=p) for p in range(16)}
        assert len(delays) > 1  # jitter actually spreads
        for d in delays:
            assert 0.005 <= d <= 0.015
        assert policy.delay_before_retry(1, partition=3) == policy.delay_before_retry(
            1, partition=3
        )

    def test_budget_consume(self):
        budget = RetryBudget(2)
        assert budget.consume() and budget.consume()
        assert not budget.consume()
        clone = pickle.loads(pickle.dumps(budget))
        assert clone.used == 3 and clone.limit == 2

    def test_deadline_stops_retries_early(self):
        policy = RetryPolicy(max_attempts=50, retry_deadline_seconds=0.02)

        def always_fail(partition: int) -> list:
            import time

            time.sleep(0.015)
            raise RuntimeError("nope")

        with pytest.raises(TaskFailure) as exc_info:
            run_task_attempts(always_fail, 0, 50, policy=policy)
        assert exc_info.value.attempts < 50

    def test_context_policy_supersedes_max_task_retries(self):
        ctx = make_ctx(retry_policy=RetryPolicy(max_attempts=5))
        try:
            assert ctx.max_task_retries == 5
        finally:
            ctx.stop()


# -- injection through the engine ------------------------------------------------


class TestInjection:
    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_task_error_recovers_on_retry(self, backend):
        plan = FaultPlan([FaultRule("task_error", partition=1)])
        clean = make_ctx(backend)
        faulty = make_ctx(backend, fault_plan=plan)
        try:
            expected = clean.parallelize(range(40), 4).map(double).collect()
            got = faulty.parallelize(range(40), 4).map(double).collect()
            assert got == expected
            assert faulty.metrics.faults_injected >= 1
            assert clean.metrics.faults_injected == 0
        finally:
            clean.stop()
            faulty.stop()

    @pytest.mark.parametrize("backend", ["sequential", "thread"])
    def test_worker_kill_inprocess_degrades_to_retry(self, backend):
        # No process to kill on in-process backends: the rule raises
        # InjectedWorkerLoss, which the attempt loop retries like any fault.
        plan = FaultPlan([FaultRule("worker_kill", partition=0)])
        ctx = make_ctx(backend, fault_plan=plan)
        try:
            assert ctx.parallelize(range(20), 4).map(double).collect() == [
                2 * x for x in range(20)
            ]
            assert ctx.metrics.faults_injected >= 1
            assert ctx.metrics.worker_losses == 0
        finally:
            ctx.stop()

    def test_delay_injection_is_metered(self):
        plan = FaultPlan([FaultRule("delay", partition=2, delay_seconds=0.01)])
        ctx = make_ctx(fault_plan=plan)
        try:
            assert ctx.parallelize(range(40), 4).map(double).count() == 40
            assert ctx.metrics.injected_delay_seconds >= 0.01
            assert ctx.metrics.faults_injected >= 1
        finally:
            ctx.stop()

    def test_attempt_history_rides_the_failure(self):
        plan = FaultPlan([FaultRule("task_error", partition=1, max_attempt=99)])
        ctx = make_ctx(fault_plan=plan)
        try:
            with pytest.raises(TaskFailure) as exc_info:
                ctx.parallelize(range(8), 4).map(double).collect()
            failure = exc_info.value
            assert failure.attempts == ctx.max_task_retries
            assert len(failure.history) == ctx.max_task_retries
            assert [a for a, _ in failure.history] == list(
                range(1, ctx.max_task_retries + 1)
            )
            assert "attempt history" in str(failure)
            assert "InjectedFault" in str(failure)
        finally:
            ctx.stop()

    def test_stage_budget_exhaustion_surfaces_cause(self):
        plan = FaultPlan([FaultRule("task_error", max_attempt=99)])
        policy = RetryPolicy(max_attempts=10, stage_attempt_budget=3)
        ctx = make_ctx(fault_plan=plan, retry_policy=policy)
        try:
            with pytest.raises(TaskFailure) as exc_info:
                ctx.parallelize(range(8), 4).map(double).collect()
            assert isinstance(exc_info.value.cause, RetryBudgetExhausted)
            assert exc_info.value.history  # the trail is attached
        finally:
            ctx.stop()

    def test_injection_parity_same_backend(self):
        # Same plan, two fresh contexts: identical fired sites and results.
        def run():
            plan = FaultPlan.chaos(seed=23, task_error=0.5)
            ctx = make_ctx(fault_plan=plan)
            try:
                result = ctx.parallelize(range(60), 6).map(double).collect()
                return result, ctx.metrics.faults_injected, list(plan.fired)
            finally:
                ctx.stop()

        first, second = run(), run()
        assert first == second
        assert first[1] >= 1


# -- worker loss & recovery (process backend) ------------------------------------


class TestWorkerLossRecovery:
    def test_kill_mid_stage_recomputes_lost_partitions(self):
        plan = FaultPlan([FaultRule("worker_kill", partition=5)])
        clean = make_ctx("process")
        faulty = make_ctx("process", fault_plan=plan)
        try:
            expected = clean.parallelize(range(64), 8).map(double).collect()
            got = faulty.parallelize(range(64), 8).map(double).collect()
            assert got == expected
            assert faulty.metrics.worker_losses >= 1
            assert faulty.metrics.partitions_recomputed >= 1
        finally:
            clean.stop()
            faulty.stop()

    def test_repeated_loss_demotes_backend(self):
        plan = FaultPlan([FaultRule("worker_kill", partition=3)])
        ctx = make_ctx(
            "process",
            fault_plan=plan,
            recovery=RecoveryOptions(demote_after_worker_losses=1),
        )
        try:
            result = ctx.parallelize(range(32), 8).map(double).collect()
            assert result == [2 * x for x in range(32)]
            assert ctx.metrics.backend_demotions == 1
            assert ctx.backend.name == "thread"
            # Post-demotion stages keep working (and stay demoted).
            assert ctx.parallelize(range(10), 2).map(double).count() == 10
            assert ctx.backend.name == "thread"
        finally:
            ctx.stop()

    def test_recovery_rounds_are_bounded(self):
        # Every re-dispatch dies again (max_attempt is huge), so the engine
        # must give up after max_stage_recoveries instead of looping.
        plan = FaultPlan([FaultRule("worker_kill", partition=3, max_attempt=99)])
        ctx = make_ctx(
            "process",
            fault_plan=plan,
            recovery=RecoveryOptions(max_stage_recoveries=1, demote=False),
        )
        try:
            with pytest.raises(EngineError, match="recovery"):
                ctx.parallelize(range(32), 8).map(double).collect()
        finally:
            ctx.stop()

    def test_demotion_ladder_shape(self):
        assert demotion_target("process") == "thread"
        assert demotion_target("thread") == "sequential"
        assert demotion_target("sequential") is None
        with pytest.raises(ValueError):
            RecoveryOptions(demote_after_worker_losses=0)


# -- speculative double-meter regression -----------------------------------------


class TestCopyFailureAccounting:
    def _chunk(self, **attrs) -> _ChunkState:
        chunk = _ChunkState([0], 0.0)
        for name, value in attrs.items():
            setattr(chunk, name, value)
        return chunk

    def test_timed_out_original_is_not_charged_twice(self):
        # The original timed out (charged via resubmits) and its zombie
        # failure lands while the re-dispatch is still running: swallow it
        # without adding waste — the resubmit fold already covers it.
        chunk = self._chunk(resubmits=1, futures={object(): False})
        failure = TaskFailure(0, 2, RuntimeError("zombie"), elapsed_seconds=0.5)
        assert _note_copy_failure(chunk, failure, was_speculative=False) is None
        assert chunk.swallowed_timeouts == 1
        assert chunk.wasted_attempts == 0

    def test_speculative_copy_failure_accumulates_waste(self):
        chunk = self._chunk(futures={object(): False})
        failure = TaskFailure(0, 3, RuntimeError("spec died"), elapsed_seconds=0.2)
        assert _note_copy_failure(chunk, failure, was_speculative=True) is None
        assert chunk.wasted_attempts == 3
        assert chunk.wasted_seconds == pytest.approx(0.2)

    def test_last_copy_failure_merges_waste_once(self):
        chunk = self._chunk(wasted_attempts=3, wasted_seconds=0.2)
        failure = TaskFailure(
            0, 2, RuntimeError("last"), elapsed_seconds=0.1, history=((1, "e"),)
        )
        fatal = _note_copy_failure(chunk, failure, was_speculative=False)
        assert fatal is not None
        assert fatal.attempts == 5  # 2 own + 3 discarded, each exactly once
        assert fatal.elapsed_seconds == pytest.approx(0.3)
        assert fatal.history == ((1, "e"),)
        assert isinstance(fatal.cause, RuntimeError)

    def test_last_copy_without_waste_passes_through(self):
        chunk = self._chunk()
        failure = TaskFailure(0, 2, RuntimeError("only copy"))
        assert _note_copy_failure(chunk, failure, was_speculative=False) is failure


# -- corrupt partitions ----------------------------------------------------------


def _write_event_dataset(directory, n=40, partitions=8):
    events = generate_nyc_events(n, seed=3)
    save_dataset(directory, events, "event", num_partitions=partitions)
    return events


class TestCorruptPartitions:
    def test_raise_surfaces_corrupt_partition_error(self, tmp_path):
        _write_event_dataset(tmp_path / "ds")
        (tmp_path / "ds" / "part-00002.pkl").write_bytes(b"not a pickle")
        ctx = make_ctx()
        try:
            rdd, _ = StDataset(tmp_path / "ds").read(ctx, use_metadata=False)
            with pytest.raises(TaskFailure) as exc_info:
                rdd.collect()
            assert isinstance(exc_info.value.cause, CorruptPartitionError)
            assert "part-00002.pkl" in str(exc_info.value.cause)
        finally:
            ctx.stop()

    def test_quarantine_loads_partition_empty(self, tmp_path):
        events = _write_event_dataset(tmp_path / "ds")
        meta = StDataset(tmp_path / "ds").metadata()
        lost = meta.partitions[2].count
        (tmp_path / "ds" / "part-00002.pkl").write_bytes(b"not a pickle")
        ctx = make_ctx()
        try:
            rdd, stats = StDataset(tmp_path / "ds").read(
                ctx, use_metadata=False, on_corrupt="quarantine"
            )
            assert rdd.count() == len(events) - lost
            assert stats.partitions_quarantined == 1
            assert stats.quarantined_files == ["part-00002.pkl"]
        finally:
            ctx.stop()

    def test_selector_records_quarantine_counter(self, tmp_path):
        from repro.obs import Tracer, installed

        _write_event_dataset(tmp_path / "ds")
        (tmp_path / "ds" / "part-00001.pkl").write_bytes(b"junk")
        ctx = make_ctx()
        tracer = Tracer()
        try:
            with installed(tracer):
                selector = Selector(
                    NYC_BBOX.to_envelope(), on_corrupt="quarantine"
                )
                selector.select(ctx, tmp_path / "ds", use_metadata=False).count()
            assert tracer.counters.get("partitions_quarantined", 0) == 1
        finally:
            ctx.stop()

    def test_on_corrupt_validation(self, tmp_path):
        with pytest.raises(ValueError, match="on_corrupt"):
            Selector(NYC_BBOX.to_envelope(), on_corrupt="explode")
        _write_event_dataset(tmp_path / "ds")
        ctx = make_ctx()
        try:
            with pytest.raises(ValueError, match="on_corrupt"):
                StDataset(tmp_path / "ds").read(ctx, on_corrupt="explode")
        finally:
            ctx.stop()

    def test_injected_corrupt_read_is_transient(self, tmp_path):
        events = _write_event_dataset(tmp_path / "ds")
        plan = FaultPlan([FaultRule("corrupt_read", path="part-00000")])
        clean_ctx = make_ctx()
        ctx = make_ctx(fault_plan=plan)
        try:
            clean_rdd, _ = StDataset(tmp_path / "ds").read(clean_ctx, use_metadata=False)
            rdd, stats = StDataset(tmp_path / "ds").read(ctx, use_metadata=False)
            assert rdd.count() == len(events) == clean_rdd.count()
            assert ctx.metrics.faults_injected >= 1
            assert stats.partitions_quarantined == 0  # transient, not quarantined
        finally:
            clean_ctx.stop()
            ctx.stop()


# -- pipeline checkpoint & resume ------------------------------------------------


def _flow_pipeline():
    one_day = Duration(EPOCH_2013, EPOCH_2013 + 86_400.0)
    return Pipeline(
        selector=Selector(NYC_BBOX.to_envelope(), one_day),
        converter=Event2TsConverter(TimeSeriesStructure.of_interval(one_day, 21_600.0)),
        extractor=TsFlowExtractor(),
    )


class TestCheckpointResume:
    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_resume_is_bit_identical(self, backend, tmp_path):
        _write_event_dataset(tmp_path / "ds", n=200, partitions=4)
        ctx = make_ctx(backend)
        try:
            baseline = _flow_pipeline().run(ctx, tmp_path / "ds")
            first = _flow_pipeline().run(
                ctx, tmp_path / "ds", checkpoint_dir=tmp_path / "ckpt"
            )
            ckpt = PipelineCheckpoint(tmp_path / "ckpt", ctx)
            assert ckpt.has("selection") and ckpt.has("conversion")
            # Resume must not touch the source: hand it a bogus path.
            resumed = _flow_pipeline().run(
                ctx, tmp_path / "does-not-exist", checkpoint_dir=tmp_path / "ckpt"
            )
            for result in (first, resumed):
                assert pickle.dumps(result.cell_values()) == pickle.dumps(
                    baseline.cell_values()
                )
        finally:
            ctx.stop()

    def test_torn_checkpoint_recomputes_phase(self, tmp_path):
        _write_event_dataset(tmp_path / "ds", n=200, partitions=4)
        ctx = make_ctx()
        try:
            baseline = _flow_pipeline().run(
                ctx, tmp_path / "ds", checkpoint_dir=tmp_path / "ckpt"
            )
            # A crash mid-checkpoint leaves no marker: conversion recomputes
            # (from the selection checkpoint — the bogus source proves it).
            (tmp_path / "ckpt" / "conversion" / COMPLETE_MARKER).unlink()
            resumed = _flow_pipeline().run(
                ctx, tmp_path / "bogus", checkpoint_dir=tmp_path / "ckpt"
            )
            assert resumed.cell_values() == baseline.cell_values()
            assert (tmp_path / "ckpt" / "conversion" / COMPLETE_MARKER).exists()
        finally:
            ctx.stop()

    def test_resume_false_ignores_existing_checkpoints(self, tmp_path):
        _write_event_dataset(tmp_path / "ds", n=200, partitions=4)
        ctx = make_ctx()
        try:
            baseline = _flow_pipeline().run(
                ctx, tmp_path / "ds", checkpoint_dir=tmp_path / "ckpt"
            )
            # resume=False must recompute from the source — a bogus source
            # therefore fails instead of silently resuming.
            with pytest.raises(FileNotFoundError):
                _flow_pipeline().run(
                    ctx,
                    tmp_path / "bogus",
                    checkpoint_dir=tmp_path / "ckpt",
                    resume=False,
                )
            again = _flow_pipeline().run(
                ctx, tmp_path / "ds", checkpoint_dir=tmp_path / "ckpt", resume=False
            )
            assert again.cell_values() == baseline.cell_values()
        finally:
            ctx.stop()

    def test_checkpoint_survives_chaos(self, tmp_path):
        plan = FaultPlan.chaos(seed=41, task_error=0.3, corrupt_read=0.3)
        _write_event_dataset(tmp_path / "ds", n=200, partitions=4)
        clean = make_ctx()
        faulty = make_ctx(fault_plan=plan)
        try:
            baseline = _flow_pipeline().run(clean, tmp_path / "ds")
            chaotic = _flow_pipeline().run(
                faulty, tmp_path / "ds", checkpoint_dir=tmp_path / "ckpt"
            )
            assert chaotic.cell_values() == baseline.cell_values()
        finally:
            clean.stop()
            faulty.stop()


# -- attempt-offset semantics (recovery re-dispatch) -----------------------------


class TestAttemptOffset:
    def test_offset_precharges_attempt_caps(self):
        def fine(partition: int) -> list:
            return [partition]

        outcome = run_task_attempts(fine, 0, 3, attempt_offset=1)
        assert outcome.attempts == 2  # first post-recovery attempt is #2
        with pytest.raises(TaskFailure):
            run_task_attempts(fine, 0, 3, attempt_offset=3)  # cap already spent

    def test_offset_skips_first_attempt_fault_rules(self):
        # A kill rule with max_attempt=1 fired before the worker died; the
        # recovery re-dispatch (offset 1 → attempt 2) must not re-trigger it.
        plan = FaultPlan([FaultRule("worker_kill", partition=0)])
        with pytest.raises(TaskFailure) as exc_info:
            run_task_attempts(identity_task, 0, 1, fault_plan=plan)
        assert isinstance(exc_info.value.cause, InjectedWorkerLoss)
        outcome = run_task_attempts(
            identity_task, 0, 3, fault_plan=plan, attempt_offset=1
        )
        assert outcome.result == identity_task(0)
        assert outcome.injected_faults == 0
