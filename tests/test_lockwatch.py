"""The runtime lock-order sanitizer (`repro.engine.lockwatch`)."""

import pickle
import threading

import pytest

from repro.engine import EngineContext, LockOrderViolation, lockwatch
from repro.obs import Tracer, installed


@pytest.fixture(autouse=True)
def _fresh_install_state():
    """Isolate from strict-mode tests elsewhere in the suite.

    ``EngineContext(strict=True)`` installs the watcher process-wide and
    deliberately leaves it on; these tests assert install/uninstall
    transitions, so start uninstalled and restore the prior state after.
    """
    was = lockwatch.is_installed()
    lockwatch.uninstall()
    yield
    if was:
        lockwatch.install()
    else:
        lockwatch.uninstall()


class TestOrderGraph:
    def test_lock_order_inversion_detected(self):
        """The seeded-inversion regression: two threads, opposite nesting.

        Runs the threads sequentially (join between them) so the cycle is
        detected from the order *graph*, never from an actual deadlock —
        fully deterministic.
        """
        with lockwatch.enabled() as watch:
            a = lockwatch.watched(name="a")
            b = lockwatch.watched(name="b")

            def forward():
                with a:
                    with b:
                        pass

            def backward():
                with b:
                    with a:
                        pass

            t1 = threading.Thread(target=forward)
            t1.start()
            t1.join()
            t2 = threading.Thread(target=backward)
            t2.start()
            t2.join()

            snap = watch.snapshot()
            assert [v["kind"] for v in snap["violations"]] == ["lock-order-cycle"]
            cycle = snap["violations"][0]["cycle"]
            assert set(cycle) == {"a", "b"}
            assert snap["edges"] == {"a": ["b"], "b": ["a"]}

    def test_cycle_reported_once(self):
        with lockwatch.enabled() as watch:
            a = lockwatch.watched(name="a")
            b = lockwatch.watched(name="b")
            with a:
                with b:
                    pass
            for _ in range(3):
                with b:
                    with a:
                        pass
            assert len(watch.snapshot()["violations"]) == 1

    def test_consistent_order_clean(self):
        with lockwatch.enabled() as watch:
            a = lockwatch.watched(name="a")
            b = lockwatch.watched(name="b")
            for _ in range(3):
                with a:
                    with b:
                        pass
            assert watch.snapshot()["violations"] == []

    def test_three_lock_cycle(self):
        with lockwatch.enabled() as watch:
            a = lockwatch.watched(name="a")
            b = lockwatch.watched(name="b")
            c = lockwatch.watched(name="c")
            with a:
                with b:
                    pass
            with b:
                with c:
                    pass
            with c:
                with a:
                    pass
            violations = watch.snapshot()["violations"]
            assert [v["kind"] for v in violations] == ["lock-order-cycle"]
            assert set(violations[0]["cycle"]) == {"a", "b", "c"}

    def test_raise_on_cycle(self):
        with lockwatch.enabled(raise_on_cycle=True):
            a = lockwatch.watched(name="a")
            b = lockwatch.watched(name="b")
            with a:
                with b:
                    pass
            with b:
                with pytest.raises(LockOrderViolation) as exc:
                    with a:
                        pass
                assert set(exc.value.cycle) == {"a", "b"}
            # The failed acquire must not leave `a` held.
            assert not a.locked()


class TestSelfDeadlock:
    def test_blocking_reacquire_raises(self):
        with lockwatch.enabled() as watch:
            lk = lockwatch.watched(name="x")
            lk.acquire()
            try:
                with pytest.raises(LockOrderViolation):
                    lk.acquire()
            finally:
                lk.release()
            assert [v["kind"] for v in watch.snapshot()["violations"]] == [
                "self-deadlock"
            ]

    def test_nonblocking_reacquire_returns_false(self):
        # Condition's default _is_owned probes with acquire(0); the probe
        # must stay a plain False, not a violation.
        with lockwatch.enabled() as watch:
            lk = lockwatch.watched(name="x")
            lk.acquire()
            try:
                assert lk.acquire(blocking=False) is False
            finally:
                lk.release()
            assert watch.snapshot()["violations"] == []

    def test_rlock_reentry_allowed(self):
        with lockwatch.enabled() as watch:
            lk = lockwatch.watched(threading.RLock(), name="r")
            with lk:
                with lk:
                    pass
            snap = watch.snapshot()
            assert snap["violations"] == []
            # Reentry is one logical acquisition of the site.
            assert snap["sites"]["r"]["acquisitions"] == 1


class TestStatsAndTracer:
    def test_site_stats_recorded(self):
        with lockwatch.enabled() as watch:
            lk = lockwatch.watched(name="s")
            for _ in range(5):
                with lk:
                    pass
            stats = watch.snapshot()["sites"]["s"]
            assert stats["acquisitions"] == 5
            assert stats["contended"] == 0
            assert stats["hold_seconds"] >= 0.0

    def test_contention_measured(self):
        with lockwatch.enabled() as watch:
            lk = lockwatch.watched(name="c")
            entered = threading.Event()
            release = threading.Event()

            def holder():
                with lk:
                    entered.set()
                    release.wait(timeout=5)

            t = threading.Thread(target=holder)
            t.start()
            entered.wait(timeout=5)
            acquired = []

            def contender():
                with lk:
                    acquired.append(True)

            t2 = threading.Thread(target=contender)
            t2.start()
            release.set()
            t2.join()
            t.join()
            stats = watch.snapshot()["sites"]["c"]
            assert acquired == [True]
            assert stats["contended"] >= 1
            assert stats["wait_seconds"] > 0.0

    def test_counters_and_spans_reach_tracer(self):
        tracer = Tracer()
        with installed(tracer):
            with lockwatch.enabled() as watch:
                watch.hold_threshold = 0.0  # every hold exports a span
                lk = lockwatch.watched(name="t")
                with lk:
                    pass
        assert tracer.counters["lock_acquisitions"] == 1
        assert "lock_hold_seconds" in tracer.counters
        holds = [s for s in tracer.spans if s.name == "lock-hold"]
        assert len(holds) == 1
        assert holds[0].args["site"] == "t"

    def test_condition_compatible(self):
        with lockwatch.enabled() as watch:
            lk = lockwatch.watched(name="cond-lock")
            cond = threading.Condition(lk)
            done = []

            def waiter():
                with cond:
                    while not done:
                        cond.wait(timeout=5)

            t = threading.Thread(target=waiter)
            t.start()
            with cond:
                done.append(1)
                cond.notify()
            t.join()
            snap = watch.snapshot()
            assert snap["violations"] == []
            assert snap["sites"]["cond-lock"]["acquisitions"] >= 2


class TestInstallation:
    def test_install_wraps_repro_module_locks(self):
        with lockwatch.enabled():
            from repro.serve.cache import ResultCache

            cache = ResultCache()
            assert type(cache._lock).__name__ == "_WatchedLock"

    def test_non_repro_locks_stay_raw(self):
        with lockwatch.enabled():
            assert type(threading.Lock()).__name__ != "_WatchedLock"

    def test_uninstall_restores(self):
        with lockwatch.enabled():
            assert lockwatch.is_installed()
        assert not lockwatch.is_installed()
        from repro.serve.cache import ResultCache

        assert type(ResultCache()._lock).__name__ != "_WatchedLock"

    def test_watched_lock_refuses_pickle(self):
        lk = lockwatch.watched(name="p")
        with pytest.raises(TypeError, match="cannot pickle"):
            pickle.dumps(lk)

    def test_env_enabled_parsing(self, monkeypatch):
        for value, expected in [
            ("1", True),
            ("true", True),
            ("ON", True),
            ("0", False),
            ("", False),
        ]:
            monkeypatch.setenv("REPRO_LOCK_SANITIZER", value)
            assert lockwatch.env_enabled() is expected
        monkeypatch.delenv("REPRO_LOCK_SANITIZER")
        assert lockwatch.env_enabled() is False

    def test_strict_context_installs(self):
        was = lockwatch.is_installed()
        try:
            ctx = EngineContext(strict=True)
            assert lockwatch.is_installed()
            # The sanitized engine still runs pipelines.
            assert ctx.parallelize(range(10), 4).map(lambda x: x * 2).sum() == 90
        finally:
            if not was:
                lockwatch.uninstall()

    def test_engine_runs_under_sanitizer(self):
        with lockwatch.enabled() as watch:
            ctx = EngineContext(default_parallelism=4, backend="thread")
            total = ctx.parallelize(range(100), 8).map(lambda x: x + 1).sum()
            assert total == 5050
            assert watch.snapshot()["violations"] == []

    def test_format_report_lists_everything(self):
        with lockwatch.enabled() as watch:
            a = lockwatch.watched(name="ra")
            b = lockwatch.watched(name="rb")
            with a:
                with b:
                    pass
            with b:
                with a:
                    pass
            text = lockwatch.format_report(watch.snapshot())
        assert "ra -> rb" in text
        assert "violations: 1" in text
        assert "lock-order-cycle" in text
