"""Road network and HMM map-matching tests."""

import math

import pytest

from repro.engine import EngineContext
from repro.instances import Event, Trajectory
from repro.mapmatching import (
    Event2EventConverter,
    HmmMapMatcher,
    RoadNetwork,
    RoadSegment,
    Traj2TrajMapMatchConverter,
)


@pytest.fixture
def grid():
    """8x8 junction grid near (116.0, 39.9), 0.005 deg (~500 m) spacing."""
    return RoadNetwork.grid(116.0, 39.9, 8, 8, spacing_degrees=0.005)


class TestRoadNetwork:
    def test_grid_segment_count(self, grid):
        # 8x8 grid: 7*8 horizontal + 8*7 vertical edges, bidirectional.
        assert grid.n_segments == 2 * (7 * 8 + 8 * 7)

    def test_grid_needs_two_by_two(self):
        with pytest.raises(ValueError):
            RoadNetwork.grid(0, 0, 1, 5)

    def test_duplicate_ids_rejected(self):
        seg = RoadSegment(0, 0, 1, 0, 0, 1, 0)
        with pytest.raises(ValueError):
            RoadNetwork([seg, seg])

    def test_segment_length(self):
        seg = RoadSegment(0, 0, 1, 0.0, 0.0, 0.0, 0.001)
        assert seg.length_meters == pytest.approx(111.2, rel=1e-2)

    def test_project_on_segment(self):
        seg = RoadSegment(0, 0, 1, 0.0, 0.0, 0.01, 0.0)
        lon, lat, dist, frac = seg.project(0.005, 0.0005)
        assert lon == pytest.approx(0.005, abs=1e-6)
        assert lat == 0.0
        assert frac == pytest.approx(0.5, abs=1e-3)
        assert dist == pytest.approx(55.6, rel=0.02)  # 0.0005 deg lat

    def test_project_clamps_to_endpoints(self):
        seg = RoadSegment(0, 0, 1, 0.0, 0.0, 0.01, 0.0)
        _, _, _, frac = seg.project(-0.5, 0.0)
        assert frac == 0.0

    def test_candidate_segments_radius(self, grid):
        hits = grid.candidate_segments(116.0025, 39.9, radius_meters=100)
        assert hits
        assert all(dist <= 100 for _, dist in hits)
        # Nearest first.
        assert hits == sorted(hits, key=lambda h: h[1])

    def test_candidate_segments_empty_far_away(self, grid):
        assert grid.candidate_segments(120.0, 50.0, radius_meters=100) == []

    def test_shortest_path_adjacent(self, grid):
        seg = grid.segments[0]
        d = grid.shortest_path_meters(seg.from_node, seg.to_node)
        assert d == pytest.approx(seg.length_meters, rel=1e-9)

    def test_shortest_path_self(self, grid):
        assert grid.shortest_path_meters(3, 3) == 0.0

    def test_shortest_path_cutoff(self, grid):
        d = grid.shortest_path_meters(0, 63, cutoff_meters=10.0)
        assert math.isinf(d)

    def test_route_distance_same_segment(self, grid):
        seg = grid.segments[0]
        d = grid.route_distance_meters(seg.segment_id, 0.2, seg.segment_id, 0.7)
        assert d == pytest.approx(0.5 * seg.length_meters)

    def test_rtree_cached(self, grid):
        assert grid.rtree() is grid.rtree()


def road_trajectory(grid, row=2, n_points=10, noise=0.00005, seed=3):
    """A trajectory traveling east along a horizontal road with GPS noise."""
    import random

    rng = random.Random(seed)
    lat = 39.9 + row * 0.005
    points = []
    t = 0.0
    for i in range(n_points):
        lon = 116.0 + i * 0.0025
        points.append((lon + rng.gauss(0, noise), lat + rng.gauss(0, noise), t))
        t += 30.0
    return Trajectory.of_points(points, data="drive")


class TestHmmMapMatcher:
    def test_matches_all_points_on_road(self, grid):
        traj = road_trajectory(grid)
        matcher = HmmMapMatcher(grid, sigma_meters=15, search_radius_meters=120)
        matched = matcher.match(traj)
        assert len(matched) == len(traj.entries)

    def test_snapped_to_correct_road(self, grid):
        traj = road_trajectory(grid, row=2)
        matcher = HmmMapMatcher(grid, sigma_meters=15, search_radius_meters=120)
        matched = matcher.match(traj)
        target_lat = 39.9 + 2 * 0.005
        for m in matched:
            assert m.lat == pytest.approx(target_lat, abs=1e-4)
            assert m.snap_distance_meters < 30

    def test_viterbi_beats_greedy_nearest(self, grid):
        """A point nearer to a perpendicular road must still match the
        traveled road given the route context."""
        lat = 39.9 + 2 * 0.005
        # Points along the horizontal road, with one sample pulled toward
        # the vertical cross street (closer to it than to the true road).
        points = [
            (116.0 + 0.0002, lat + 0.00002, 0.0),
            (116.005 - 0.0002, lat + 0.0021, 30.0),  # near the intersection, offset up
            (116.01 - 0.0002, lat + 0.00002, 60.0),
        ]
        traj = Trajectory.of_points(points, data="tricky")
        matcher = HmmMapMatcher(grid, sigma_meters=30, search_radius_meters=400)
        matched = matcher.match(traj)
        assert len(matched) == 3
        # First and last are unambiguous; the route-consistent middle match
        # keeps the vehicle near the horizontal road's latitude.
        assert matched[0].lat == pytest.approx(lat, abs=1e-4)
        assert matched[2].lat == pytest.approx(lat, abs=1e-4)

    def test_off_network_points_dropped(self, grid):
        points = [(130.0, 50.0, 0.0), (130.1, 50.0, 30.0)]
        traj = Trajectory.of_points(points, data="lost")
        matcher = HmmMapMatcher(grid)
        assert matcher.match(traj) == []
        assert matcher.match_to_trajectory(traj) is None

    def test_match_to_trajectory_values_are_segments(self, grid):
        traj = road_trajectory(grid)
        matcher = HmmMapMatcher(grid, sigma_meters=15, search_radius_meters=120)
        matched = matcher.match_to_trajectory(traj)
        assert matched.data == "drive"
        for e in matched.entries:
            assert isinstance(e.value, int)
            assert 0 <= e.value < grid.n_segments

    def test_parameter_validation(self, grid):
        with pytest.raises(ValueError):
            HmmMapMatcher(grid, sigma_meters=0)


class TestMapMatchConverters:
    def test_traj2traj_parallel(self, grid):
        ctx = EngineContext(default_parallelism=2)
        trajs = [road_trajectory(grid, row=r % 6, seed=r) for r in range(8)]
        rdd = ctx.parallelize(trajs, 2)
        out = Traj2TrajMapMatchConverter(
            grid, sigma_meters=15, search_radius_meters=120
        ).convert(rdd)
        assert out.count() == 8

    def test_traj2traj_type_check(self, grid):
        ctx = EngineContext(default_parallelism=1)
        rdd = ctx.parallelize([Event.of_point(116.0, 39.9, 0.0)], 1)
        with pytest.raises(Exception):
            Traj2TrajMapMatchConverter(grid).convert(rdd).collect()

    def test_event2event_snaps(self, grid):
        ctx = EngineContext(default_parallelism=1)
        ev = Event.of_point(116.0001, 39.9001, 0.0, data="e")
        out = Event2EventConverter(grid).convert(ctx.parallelize([ev], 1)).collect()
        assert len(out) == 1
        snapped = out[0]
        assert isinstance(snapped.value, int)  # segment id
        assert snapped.data == "e"

    def test_event2event_unmatched_kept_by_default(self, grid):
        ctx = EngineContext(default_parallelism=1)
        far = Event.of_point(130.0, 50.0, 0.0, data="far")
        kept = Event2EventConverter(grid).convert(ctx.parallelize([far], 1)).collect()
        assert kept == [far]
        dropped = (
            Event2EventConverter(grid, drop_unmatched=True)
            .convert(ctx.parallelize([far], 1))
            .collect()
        )
        assert dropped == []
