"""Figure 5 — loading + selecting with the on-disk metadata index.

Paper: indexed loading saves up to 60% time vs native full-scan loading,
with 42-98% of irrelevant records pruned, across query range ratios; the
gain grows as the query shrinks.

Series reproduced:
* 5a/5b — processing time (events / trajectories), indexed vs native;
* 5c/5d — records loaded into memory vs actually selected.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import Stopwatch, fmt, fresh_ctx, print_table
from repro.core import Selector
from repro.datasets import NYC_BBOX, PORTO_BBOX
from repro.datasets.common import EPOCH_2013
from repro.datasets.porto import PORTO_START
from repro.workloads import anchored_query

RANGE_RATIOS = [0.05, 0.1, 0.2, 0.5, 1.0]


def query_for(bbox, t_start: float, ratio: float, days: int = 30):
    """An ST query covering ``ratio`` of each dimension, anchored low."""
    query = anchored_query(bbox, t_start, ratio, days)
    return query.spatial, query.temporal


def run_selection(directory, spatial, temporal, use_metadata: bool):
    ctx = fresh_ctx()
    selector = Selector(spatial, temporal)
    selected = selector.select(ctx, directory, use_metadata=use_metadata)
    n_selected = selected.count()
    return selector.last_load_stats, n_selected


@pytest.mark.parametrize("ratio", [0.1, 0.5])
def test_fig5a_event_selection_indexed(benchmark, bench_dirs, ratio):
    spatial, temporal = query_for(NYC_BBOX, EPOCH_2013, ratio)
    benchmark(run_selection, bench_dirs / "events_st4ml", spatial, temporal, True)


@pytest.mark.parametrize("ratio", [0.1, 0.5])
def test_fig5a_event_selection_native(benchmark, bench_dirs, ratio):
    spatial, temporal = query_for(NYC_BBOX, EPOCH_2013, ratio)
    benchmark(run_selection, bench_dirs / "events_st4ml", spatial, temporal, False)


@pytest.mark.parametrize("ratio", [0.1, 0.5])
def test_fig5b_trajectory_selection_indexed(benchmark, bench_dirs, ratio):
    spatial, temporal = query_for(PORTO_BBOX, PORTO_START, ratio)
    benchmark(run_selection, bench_dirs / "trajs_st4ml", spatial, temporal, True)


@pytest.mark.parametrize("ratio", [0.1, 0.5])
def test_fig5b_trajectory_selection_native(benchmark, bench_dirs, ratio):
    spatial, temporal = query_for(PORTO_BBOX, PORTO_START, ratio)
    benchmark(run_selection, bench_dirs / "trajs_st4ml", spatial, temporal, False)


def test_fig5_report(benchmark, bench_dirs):
    """Full Figure 5 sweep: time + memory series for both datasets."""

    def sweep():
        rows = []
        for label, directory, bbox, t0 in (
            ("event", bench_dirs / "events_st4ml", NYC_BBOX, EPOCH_2013),
            ("traj", bench_dirs / "trajs_st4ml", PORTO_BBOX, PORTO_START),
        ):
            for ratio in RANGE_RATIOS:
                spatial, temporal = query_for(bbox, t0, ratio)
                watch = Stopwatch()
                stats_idx, n_sel = run_selection(directory, spatial, temporal, True)
                t_indexed = watch.lap()
                stats_full, _ = run_selection(directory, spatial, temporal, False)
                t_native = watch.lap()
                saved = 100.0 * (1 - t_indexed / t_native) if t_native else 0.0
                pruned = (
                    100.0
                    * (stats_full.records_loaded - stats_idx.records_loaded)
                    / max(1, stats_full.records_loaded - n_sel)
                )
                rows.append(
                    [
                        label,
                        ratio,
                        fmt(t_indexed),
                        fmt(t_native),
                        f"{saved:.0f}%",
                        stats_idx.records_loaded,
                        stats_full.records_loaded,
                        n_sel,
                        f"{pruned:.0f}%",
                    ]
                )
        print_table(
            "Figure 5: on-disk indexing with metadata",
            ["data", "range", "t_indexed", "t_native", "t_saved",
             "loaded_idx", "loaded_native", "selected", "irrelevant_pruned"],
            rows,
        )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    # Shape assertions from the paper: pruning exists and shrinks with range.
    event_rows = [r for r in rows if r[0] == "event"]
    assert event_rows[0][5] < event_rows[-1][5]  # smaller query loads less
    assert all(r[5] <= r[6] for r in rows)  # indexed never loads more
