"""Table 8 — lines of code implementing the end-to-end applications.

Paper: ST4ML with built-ins (ST4ML-B) needs the least code; custom
functions (ST4ML-C) ~19% more; GeoMesa ~93% and GeoSpark ~119% more than
ST4ML-B.

Here the measured artifacts are the real implementations in
``repro.apps``: the source of each app's ``run_st4ml`` (built-in
extractors = ST4ML-B), the custom-extractor example (ST4ML-C shape), and
each ``run_geomesa`` / ``run_geospark`` + the shared baseline plumbing
they need (allocation scans and group-count aggregation that ST4ML users
get for free).
"""

from __future__ import annotations

import inspect

from benchmarks.conftest import print_table
from repro.apps import FIGURE7_APPS
from repro.apps import common as apps_common


def loc_of(obj) -> int:
    """Non-blank, non-comment source lines of a function."""
    lines = inspect.getsource(obj).splitlines()
    return sum(
        1 for line in lines if line.strip() and not line.strip().startswith("#")
    )


def measure_loc() -> dict[str, dict[str, int]]:
    baseline_shared = loc_of(apps_common.naive_cell_scan) + loc_of(
        apps_common.group_count
    )
    table: dict[str, dict[str, int]] = {}
    for name, module in FIGURE7_APPS.items():
        entry = {"st4ml": loc_of(module.run_st4ml)}
        helper = getattr(module, "_run_baseline", None)
        helper_loc = loc_of(helper) if helper else 0
        entry["geomesa"] = loc_of(module.run_geomesa) + helper_loc + baseline_shared
        entry["geospark"] = loc_of(module.run_geospark) + helper_loc + baseline_shared
        table[name] = entry
    return table


def test_table8_report(benchmark):
    table = benchmark.pedantic(measure_loc, rounds=1, iterations=1)
    rows = []
    sums = {"st4ml": 0, "geomesa": 0, "geospark": 0}
    for name, entry in table.items():
        rows.append([name, entry["st4ml"], entry["geomesa"], entry["geospark"]])
        for k in sums:
            sums[k] += entry[k]
    base = sums["st4ml"]
    rows.append(
        [
            "TOTAL (relative)",
            "100%",
            f"{100 * sums['geomesa'] / base:.0f}%",
            f"{100 * sums['geospark'] / base:.0f}%",
        ]
    )
    print_table(
        "Table 8: lines of code per end-to-end application",
        ["application", "st4ml", "geomesa-like", "geospark-like"],
        rows,
    )
    # Paper shape: both baselines need substantially more code than ST4ML.
    assert sums["geomesa"] > 1.3 * base
    assert sums["geospark"] > 1.3 * base
    for name, entry in table.items():
        assert entry["st4ml"] <= entry["geomesa"], name
        assert entry["st4ml"] <= entry["geospark"], name
