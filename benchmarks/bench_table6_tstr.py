"""Table 6 — T-STR vs 2-d STR: data loading and companion extraction.

Paper (unit: minutes):

=========  ============  ===========  ================  ===============
method     load (event)  load (traj)  companion (event) companion (traj)
=========  ============  ===========  ================  ===============
2-d STR        5.53          2.36          57.52            71.57
T-STR          0.98          0.91          19.35             8.92
=========  ============  ===========  ================  ===============

Shapes: T-STR indexes load several times faster (temporal pruning works),
and ST-aware partitions make companion extraction markedly cheaper
(fewer inner-partition comparisons).
"""

from __future__ import annotations

from benchmarks.conftest import Stopwatch, fmt, fresh_ctx, print_table
from repro.core import Selector
from repro.core.extractors import EventCompanionExtractor, TrajCompanionExtractor
from repro.datasets import NYC_BBOX, PORTO_BBOX
from repro.datasets.common import EPOCH_2013
from repro.datasets.porto import PORTO_START
from repro.partitioners import STRPartitioner, TSTRPartitioner
from repro.stio import save_dataset
from repro.temporal import Duration

N_SELECTIONS = 10
GT = GS = 6


def build_indexes(tmp_root, events, trajectories):
    """Persist both datasets under both partitioners."""
    ctx = fresh_ctx()
    layouts = {}
    for method, factory in (
        ("2d-str", lambda: STRPartitioner(GT * GS)),
        ("t-str", lambda: TSTRPartitioner(GT, GS)),
    ):
        for name, data, kind in (
            ("event", events, "event"),
            ("traj", trajectories, "trajectory"),
        ):
            directory = tmp_root / f"{name}_{method}"
            save_dataset(directory, data, kind, partitioner=factory(), ctx=ctx)
            layouts[(method, name)] = directory
    return layouts


def random_queries(bbox, t0, n, seed=7, s_ratio=0.6, t_ratio=0.08, days=30):
    """Spatially broad, temporally narrow queries — the weekly-scale window
    over a city-wide area the paper's Section 4.1 example motivates, where
    spatial-only partitioning "performs ineffective temporal filtering"."""
    from repro.workloads import random_queries as make

    return [
        q.as_tuple()
        for q in make(bbox, t0, n, seed=seed, s_ratio=s_ratio, t_ratio=t_ratio, days=days)
    ]


def run_selections(directory, queries):
    loaded = 0
    for spatial, temporal in queries:
        ctx = fresh_ctx()
        selector = Selector(spatial, temporal)
        selector.select(ctx, directory).count()
        loaded += selector.last_load_stats.records_loaded
    return loaded


def run_companions(directory, which: str, bbox, t0):
    ctx = fresh_ctx()
    selector = Selector(
        bbox.to_envelope(), Duration(t0, t0 + 86_400.0 * 30)
    )
    rdd = selector.select(ctx, directory)
    if which == "event":
        extractor = EventCompanionExtractor(1_000.0, 900.0)
    else:
        extractor = TrajCompanionExtractor(1_000.0, 900.0)
    return extractor.extract(rdd).count()


def test_table6_report(benchmark, bench_events, bench_trajectories, tmp_path):
    events = bench_events[:8_000]
    trajectories = bench_trajectories[:500]

    def full_run():
        layouts = build_indexes(tmp_path, events, trajectories)
        event_queries = random_queries(NYC_BBOX, EPOCH_2013, N_SELECTIONS)
        traj_queries = random_queries(PORTO_BBOX, PORTO_START, N_SELECTIONS)
        rows = []
        timings = {}
        for method in ("2d-str", "t-str"):
            watch = Stopwatch()
            loaded_ev = run_selections(layouts[(method, "event")], event_queries)
            t_load_ev = watch.lap()
            loaded_tr = run_selections(layouts[(method, "traj")], traj_queries)
            t_load_tr = watch.lap()
            pairs_ev = run_companions(layouts[(method, "event")], "event", NYC_BBOX, EPOCH_2013)
            t_comp_ev = watch.lap()
            pairs_tr = run_companions(layouts[(method, "traj")], "traj", PORTO_BBOX, PORTO_START)
            t_comp_tr = watch.lap()
            timings[method] = (t_load_ev, t_load_tr, t_comp_ev, t_comp_tr, loaded_ev, loaded_tr)
            rows.append(
                [
                    method,
                    fmt(t_load_ev), fmt(t_load_tr),
                    fmt(t_comp_ev), fmt(t_comp_tr),
                    loaded_ev, loaded_tr, pairs_ev, pairs_tr,
                ]
            )
        print_table(
            "Table 6: T-STR vs 2-d STR",
            ["method", "load_event", "load_traj", "companion_event",
             "companion_traj", "rec_loaded_ev", "rec_loaded_tr",
             "pairs_ev", "pairs_tr"],
            rows,
        )
        return timings

    timings = benchmark.pedantic(full_run, rounds=1, iterations=1)
    str_t = timings["2d-str"]
    tstr_t = timings["t-str"]
    # Paper shape: T-STR loads fewer records (temporal pruning is the
    # mechanism behind its 4.6x / 1.6x loading speedups) and its wall-clock
    # is no worse within laptop noise.
    assert tstr_t[4] < str_t[4], "T-STR should load fewer event records"
    assert tstr_t[5] < str_t[5], "T-STR should load fewer trajectory records"
    assert tstr_t[0] < str_t[0] * 1.5
    assert tstr_t[1] < str_t[1] * 1.5
