"""Figure 7 (scale axis) — the ST4ML-vs-baseline gap vs data size.

The paper plots each application's processing time at several data scales
and observes: "as the data size increases, all solutions take longer
processing time but ST4ML grows much slower, indicating higher
scalability."  This module reproduces the scale axis for two
representative applications (one without conversion, one with).
"""

from __future__ import annotations

from benchmarks.conftest import Stopwatch, fmt, fresh_ctx, print_table
from repro.apps import anomaly, hourly_flow
from repro.baselines import GeoMesaLike, GeoSparkLike
from repro.datasets import generate_nyc_events
from repro.datasets.common import EPOCH_2013
from repro.geometry import Envelope
from repro.partitioners import TSTRPartitioner
from repro.stio import save_dataset
from repro.temporal import Duration

SCALES = [5_000, 10_000, 20_000]
QUERY_S = Envelope(-74.02, 40.62, -73.85, 40.82)
QUERY_T = Duration(EPOCH_2013, EPOCH_2013 + 6 * 86_400.0)
REPEATS = 3  # take the best of N to suppress single-machine noise


def prepare(tmp_root, n: int):
    events = generate_nyc_events(n, seed=300 + n, days=30)
    ctx = fresh_ctx()
    st_dir = tmp_root / f"st_{n}"
    gm_dir = tmp_root / f"gm_{n}"
    gs_dir = tmp_root / f"gs_{n}"
    save_dataset(st_dir, events, "event", partitioner=TSTRPartitioner(5, 4), ctx=ctx)
    GeoMesaLike.ingest(events, gm_dir, block_records=512)
    GeoSparkLike.ingest(events, gs_dir)
    return st_dir, gm_dir, gs_dir


def test_fig7_scale_report(benchmark, tmp_path):
    def sweep():
        gaps = {}
        rows = []
        for app_name, module in (("anomaly", anomaly), ("hourly_flow", hourly_flow)):
            for n in SCALES:
                st_dir, gm_dir, gs_dir = prepare(tmp_path, n)

                def best_of(run, directory) -> float:
                    times = []
                    for _ in range(REPEATS):
                        watch = Stopwatch()
                        run(fresh_ctx(), directory, QUERY_S, QUERY_T)
                        times.append(watch.lap())
                    return min(times)

                t_st = best_of(module.run_st4ml, st_dir)
                t_gm = best_of(module.run_geomesa, gm_dir)
                t_gs = best_of(module.run_geospark, gs_dir)
                gaps[(app_name, n)] = (t_gm / t_st, t_gs / t_st)
                rows.append(
                    [
                        app_name, n, fmt(t_st), fmt(t_gm), fmt(t_gs),
                        f"{t_gm / t_st:.1f}x", f"{t_gs / t_st:.1f}x",
                    ]
                )
        print_table(
            "Figure 7 (scale axis): processing time vs data size",
            ["application", "records", "st4ml", "geomesa", "geospark",
             "geomesa/st4ml", "geospark/st4ml"],
            rows,
        )
        return gaps

    gaps = benchmark.pedantic(sweep, rounds=1, iterations=1)
    # ST4ML must win at every scale.  The paper additionally observes the
    # gap *widening* with scale; that effect comes from cluster memory
    # pressure (executors spilling under GeoSpark's load-everything
    # strategy), which a single-process engine cannot model — so here we
    # assert the win, not the widening (see EXPERIMENTS.md).
    for (app_name, n), (gm_ratio, gs_ratio) in gaps.items():
        assert gm_ratio > 1.0, (app_name, n)
        assert gs_ratio > 1.0, (app_name, n)
