"""Figure 7 — end-to-end processing time of the eight Table 7 applications
on ST4ML vs the GeoMesa-like and GeoSpark-like baselines.

Paper: ST4ML wins every application; up to 17×/3× (events) and 3.5×/1.2×
(trajectories) without conversion, and up to 27.6×/9.6× (hourly flow),
4.2×/3× (grid speed), 6.3×/2.2× (transition), 11×/11.8× (air), 39×/7×
(POI count) with conversion.  The gap grows with data scale.

Each application runs on 10 random ST ranges in sequence (as in the
paper); total time is reported per system.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import Stopwatch, fmt, fresh_ctx, print_table
from repro.apps import air_road, anomaly, avg_speed, grid_speed, hourly_flow, poi_count, stay_point, transition
from repro.baselines import GeoMesaLike, GeoSparkLike
from repro.datasets import (
    AIR_BBOX,
    NYC_BBOX,
    PORTO_BBOX,
    enlarge_air,
    generate_air_records,
    generate_osm_areas,
    generate_osm_pois,
)
from repro.datasets.air import AIR_START
from repro.datasets.common import EPOCH_2013
from repro.datasets.osm import OSM_BBOX
from repro.datasets.porto import PORTO_START
from repro.mapmatching import RoadNetwork
from repro.partitioners import TSTRPartitioner
from repro.stio import save_dataset

N_RANGES = 10
RANGE_RATIO = 0.4


@pytest.fixture(scope="module")
def extra_dirs(tmp_path_factory):
    """Air and OSM datasets (the Figure 7 suite beyond NYC/Porto)."""
    root = tmp_path_factory.mktemp("fig7-extra")
    ctx = fresh_ctx()
    # The paper enlarges Air by replicating stations with sigma=500 m noise
    # and interpolating to a finer interval; same protocol, smaller factor.
    air = enlarge_air(
        generate_air_records(12, hours=72, seed=103),
        station_factor=4,
        target_interval_seconds=900.0,
    )
    pois = generate_osm_pois(6_000, seed=104)
    save_dataset(root / "air_st4ml", air, "event", partitioner=TSTRPartitioner(3, 3), ctx=ctx)
    save_dataset(root / "osm_st4ml", pois, "event", partitioner=TSTRPartitioner(1, 9), ctx=ctx)
    GeoSparkLike.ingest(air, root / "air_gs")
    GeoSparkLike.ingest(pois, root / "osm_gs")
    GeoMesaLike.ingest(air, root / "air_gm", block_records=512)
    GeoMesaLike.ingest(pois, root / "osm_gm", block_records=512)
    return root


def random_ranges(bbox, t0, days, seed, n=N_RANGES, ratio=RANGE_RATIO):
    from repro.workloads import random_queries

    return [
        q.as_tuple()
        for q in random_queries(
            bbox, t0, n, seed=seed, s_ratio=ratio, t_ratio=ratio, days=days
        )
    ]


def _app_matrix(bench_dirs, extra_dirs):
    """(app name, per-system callables over (ctx, spatial, temporal))."""
    air_net = RoadNetwork.grid(AIR_BBOX.min_lon, AIR_BBOX.min_lat, 3, 3, spacing_degrees=2.0)
    osm_areas = generate_osm_areas(5, 4, seed=104)

    def runner(module, st_dir, gm_dir, gs_dir, **extra):
        return {
            "st4ml": lambda ctx, s, t: module.run_st4ml(ctx, st_dir, s, t, **extra),
            "geomesa": lambda ctx, s, t: module.run_geomesa(ctx, gm_dir, s, t, **extra),
            "geospark": lambda ctx, s, t: module.run_geospark(ctx, gs_dir, s, t, **extra),
        }

    nyc = (bench_dirs / "events_st4ml", bench_dirs / "events_gm", bench_dirs / "events_gs")
    porto = (bench_dirs / "trajs_st4ml", bench_dirs / "trajs_gm", bench_dirs / "trajs_gs")
    air = (extra_dirs / "air_st4ml", extra_dirs / "air_gm", extra_dirs / "air_gs")
    osm = (extra_dirs / "osm_st4ml", extra_dirs / "osm_gm", extra_dirs / "osm_gs")

    def poi_runner(system, directory):
        def run(ctx, spatial, temporal):
            fn = getattr(poi_count, f"run_{system}")
            return fn(ctx, directory, spatial, osm_areas)

        return run

    return [
        ("anomaly", runner(anomaly, *nyc), NYC_BBOX, EPOCH_2013, 30),
        ("avg_speed", runner(avg_speed, *porto), PORTO_BBOX, PORTO_START, 30),
        ("stay_point", runner(stay_point, *porto), PORTO_BBOX, PORTO_START, 30),
        ("hourly_flow", runner(hourly_flow, *nyc), NYC_BBOX, EPOCH_2013, 30),
        ("grid_speed", runner(grid_speed, *porto), PORTO_BBOX, PORTO_START, 30),
        ("transition", runner(transition, *porto), PORTO_BBOX, PORTO_START, 30),
        ("air_road", runner(air_road, *air, network=air_net), AIR_BBOX, AIR_START, 3),
        (
            "poi_count",
            {
                "st4ml": poi_runner("st4ml", osm[0]),
                "geomesa": poi_runner("geomesa", osm[1]),
                "geospark": poi_runner("geospark", osm[2]),
            },
            OSM_BBOX,
            0.0,
            1,
        ),
    ]


def run_app_over_ranges(run, ranges):
    ctx = fresh_ctx()
    for spatial, temporal in ranges:
        run(ctx, spatial, temporal)


@pytest.mark.parametrize("system", ["st4ml", "geomesa", "geospark"])
@pytest.mark.parametrize("app", ["anomaly", "hourly_flow"])
def test_fig7_sampled_apps(benchmark, bench_dirs, extra_dirs, app, system):
    """Per-system timings for two representative apps (full suite in the
    report test)."""
    matrix = {name: (runners, bbox, t0, days) for name, runners, bbox, t0, days in _app_matrix(bench_dirs, extra_dirs)}
    runners, bbox, t0, days = matrix[app]
    ranges = random_ranges(bbox, t0, days, seed=42, n=3)
    benchmark.pedantic(
        run_app_over_ranges, args=(runners[system], ranges), rounds=1, iterations=1
    )


def test_fig7_report(benchmark, bench_dirs, extra_dirs):
    def full_suite():
        rows = []
        totals = {}
        for name, runners, bbox, t0, days in _app_matrix(bench_dirs, extra_dirs):
            ranges = random_ranges(bbox, t0, days, seed=hash(name) % 1000)
            times = {}
            for system in ("st4ml", "geomesa", "geospark"):
                watch = Stopwatch()
                run_app_over_ranges(runners[system], ranges)
                times[system] = watch.lap()
            totals[name] = times
            rows.append(
                [
                    name,
                    fmt(times["st4ml"]),
                    fmt(times["geomesa"]),
                    fmt(times["geospark"]),
                    f"{times['geomesa'] / times['st4ml']:.1f}x",
                    f"{times['geospark'] / times['st4ml']:.1f}x",
                ]
            )
        print_table(
            f"Figure 7: end-to-end time over {N_RANGES} random ST ranges",
            ["application", "st4ml", "geomesa", "geospark",
             "geomesa/st4ml", "geospark/st4ml"],
            rows,
        )
        return totals

    totals = benchmark.pedantic(full_suite, rounds=1, iterations=1)
    # Paper shape: ST4ML wins overall, and by more on conversion-heavy apps.
    wins = sum(
        1
        for times in totals.values()
        if times["st4ml"] <= times["geomesa"] and times["st4ml"] <= times["geospark"]
    )
    assert wins >= 6, f"ST4ML won only {wins}/8 applications"
    conv_heavy = ["hourly_flow", "poi_count"]
    for name in conv_heavy:
        t = totals[name]
        assert t["st4ml"] < min(t["geomesa"], t["geospark"]), name
