"""Table 9 — road-network flow extraction with map matching.

Paper: two days of sparse camera trajectories (883k/811k trajectories,
~9 points and ~27 min each) over a 2899-segment district; processing takes
~55 min/day on the cluster, dominated by map matching over sparse samples.
No baseline exists ("cannot be supported by simply extending GeoSpark or
GeoMesa").

Reproduced series: per-day trajectory volume, average points per
trajectory, average duration, processing time, and the inferred-flow
digest.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import Stopwatch, fmt, fresh_ctx, print_table
from repro.apps import case_road_flow
from repro.datasets import generate_hangzhou_case
from repro.geometry import Envelope
from repro.stio import save_dataset
from repro.temporal import Duration

AREA = Envelope(120.10, 30.23, 120.25, 30.35)
DAY = Duration(0.0, 86_400.0)
DAYS = [("sun", 500, 210), ("mon", 460, 211)]


@pytest.fixture(scope="module")
def flow_days(tmp_path_factory):
    root = tmp_path_factory.mktemp("table9")
    ctx = fresh_ctx()
    prepared = []
    for label, volume, seed in DAYS:
        case = generate_hangzhou_case(volume, seed=seed, grid_rows=10, grid_cols=10)
        directory = root / label
        save_dataset(directory, case.trajectories, "trajectory", ctx=ctx)
        prepared.append((label, case, directory))
    return prepared


def run_day(case, directory):
    return case_road_flow.run_st4ml(
        fresh_ctx(), directory, case.network, AREA, DAY,
        sigma_meters=15.0, search_radius_meters=120.0,
    )


def test_table9_single_day(benchmark, flow_days):
    label, case, directory = flow_days[0]
    flows = benchmark.pedantic(run_day, args=(case, directory), rounds=1, iterations=1)
    assert case_road_flow.flow_summary(flows)["total_flow"] > 0


def test_table9_report(benchmark, flow_days):
    def both_days():
        rows = []
        summaries = []
        for label, case, directory in flow_days:
            pts = [len(t.entries) for t in case.trajectories]
            durs = [t.duration_seconds() / 60.0 for t in case.trajectories]
            watch = Stopwatch()
            flows = run_day(case, directory)
            elapsed = watch.lap()
            summary = case_road_flow.flow_summary(flows)
            summaries.append(summary)
            rows.append(
                [
                    label,
                    len(case.trajectories),
                    f"{sum(pts) / len(pts):.2f}",
                    f"{sum(durs) / len(durs):.2f} min",
                    fmt(elapsed),
                    case.network.n_segments,
                    summary["segments_covered"],
                    summary["total_flow"],
                    summary["peak_hour"],
                ]
            )
        print_table(
            "Table 9: road-network flow extraction (map matching + completion)",
            ["day", "trajectories", "avg_points", "avg_duration", "time",
             "segments", "covered", "total_flow", "peak_hour"],
            rows,
        )
        return summaries

    summaries = benchmark.pedantic(both_days, rounds=1, iterations=1)
    for summary in summaries:
        # Route completion must cover a substantial share of the network,
        # including segments no camera observes directly.
        assert summary["segments_covered"] > 100
        assert summary["total_flow"] > 0
