"""Figure 9 — case study: daily traffic speed extraction, ST4ML vs GeoSpark.

Paper: over a month of Hangzhou camera trajectories, ST4ML extracts daily
city-wide (district × hour) speed profiles 3-7× faster than the
GeoSpark-based flow; both grow with daily data size.

We synthesize several "days" of camera trajectories with varying volume
and compare per-day extraction time.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import Stopwatch, fmt, fresh_ctx, print_table
from repro.apps import case_speed
from repro.baselines import GeoSparkLike
from repro.datasets import generate_hangzhou_case
from repro.geometry import Envelope
from repro.partitioners import TSTRPartitioner
from repro.stio import save_dataset
from repro.temporal import Duration

AREA = Envelope(120.10, 30.23, 120.25, 30.35)
DAY = Duration(0.0, 86_400.0)
#: Per-day vehicle volumes — the varying daily data sizes of Figure 9.
DAY_VOLUMES = [300, 500, 800, 1200]


@pytest.fixture(scope="module")
def day_dirs(tmp_path_factory):
    root = tmp_path_factory.mktemp("fig9")
    ctx = fresh_ctx()
    dirs = []
    for day_index, volume in enumerate(DAY_VOLUMES):
        case = generate_hangzhou_case(volume, seed=200 + day_index, grid_rows=10, grid_cols=10)
        st_dir = root / f"day{day_index}_st4ml"
        gs_dir = root / f"day{day_index}_gs"
        save_dataset(
            st_dir, case.trajectories, "trajectory",
            partitioner=TSTRPartitioner(4, 4), ctx=ctx,
        )
        GeoSparkLike.ingest(case.trajectories, gs_dir)
        dirs.append((volume, st_dir, gs_dir))
    return dirs


def run_st4ml_day(st_dir):
    return case_speed.run_st4ml(fresh_ctx(), st_dir, AREA, DAY)


def run_geospark_day(gs_dir):
    return case_speed.run_geospark(fresh_ctx(), gs_dir, AREA, DAY)


@pytest.mark.parametrize("day_index", [0, len(DAY_VOLUMES) - 1])
def test_fig9_st4ml_day(benchmark, day_dirs, day_index):
    _, st_dir, _ = day_dirs[day_index]
    benchmark.pedantic(run_st4ml_day, args=(st_dir,), rounds=1, iterations=1)


@pytest.mark.parametrize("day_index", [0, len(DAY_VOLUMES) - 1])
def test_fig9_geospark_day(benchmark, day_dirs, day_index):
    _, _, gs_dir = day_dirs[day_index]
    benchmark.pedantic(run_geospark_day, args=(gs_dir,), rounds=1, iterations=1)


def test_fig9_report(benchmark, day_dirs):
    def month_sweep():
        rows = []
        ratios = []
        for day_index, (volume, st_dir, gs_dir) in enumerate(day_dirs):
            watch = Stopwatch()
            st_result = run_st4ml_day(st_dir)
            t_st = watch.lap()
            run_geospark_day(gs_dir)
            t_gs = watch.lap()
            vehicles = sum(v[0] for v in st_result)
            ratios.append(t_gs / t_st)
            rows.append(
                [day_index, volume, vehicles, fmt(t_st), fmt(t_gs), f"{t_gs / t_st:.1f}x"]
            )
        print_table(
            "Figure 9: daily raster speed extraction (st4ml vs geospark)",
            ["day", "trajectories", "cell_vehicles", "t_st4ml", "t_geospark", "speedup"],
            rows,
        )
        return ratios

    ratios = benchmark.pedantic(month_sweep, rounds=1, iterations=1)
    # Paper shape: ST4ML faster every day.
    assert all(r > 1.0 for r in ratios), ratios
