"""Serve-daemon warm-vs-cold benchmark (``BENCH_serve.json``).

Measures what residency buys: a round of distinct ST-range queries
against a freshly started ``repro serve`` daemon (cold — every query
decodes blocks, builds selection indexes, and runs the filter) followed
by the identical round again (warm — answers come from the server-wide
result cache; the index and block tiers are also hot).  Latencies are
client-observed over the real socket protocol, so the speedup is what a
caller would see.

Every warm answer is cross-checked byte-for-byte against its cold
counterpart, and the run fails (exit 1) unless the warm round recorded
result-cache hits and a lower median latency — the regression guard the
acceptance criteria ask for.

Run the full-size record (50k events)::

    PYTHONPATH=src python benchmarks/bench_serve.py

CI smoke (small n)::

    PYTHONPATH=src python benchmarks/bench_serve.py --smoke
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import tempfile
import threading
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from repro.datasets import generate_nyc_events  # noqa: E402
from repro.datasets.common import EPOCH_2013  # noqa: E402
from repro.partitioners import TSTRPartitioner  # noqa: E402
from repro.serve import (  # noqa: E402
    QueryServer,
    ServeClient,
    ServeConfig,
    result_document,
    wait_until_ready,
)
from repro.stio import save_dataset  # noqa: E402

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Distinct NYC-band query rectangles — enough spread that each cold query
#: touches different partitions, so the cold round is honest about index
#: builds rather than riding the first query's warmup.
QUERIES = [
    {"bbox": [-74.02, 40.60, -73.96, 40.70], "time": [EPOCH_2013, EPOCH_2013 + 10 * 86_400.0]},
    {"bbox": [-74.00, 40.70, -73.92, 40.78], "time": [EPOCH_2013, EPOCH_2013 + 20 * 86_400.0]},
    {"bbox": [-73.98, 40.64, -73.90, 40.74], "time": [EPOCH_2013 + 5 * 86_400.0, EPOCH_2013 + 25 * 86_400.0]},
    {"bbox": [-74.03, 40.66, -73.94, 40.76], "time": [EPOCH_2013, EPOCH_2013 + 30 * 86_400.0]},
    {"bbox": [-73.99, 40.61, -73.93, 40.69], "time": [EPOCH_2013 + 2 * 86_400.0, EPOCH_2013 + 12 * 86_400.0]},
    {"bbox": [-74.01, 40.72, -73.95, 40.79], "time": [EPOCH_2013, EPOCH_2013 + 15 * 86_400.0]},
]


def run_round(client: ServeClient, queries: list[dict]) -> tuple[list[float], list[str]]:
    """One pass over ``queries``; returns (latencies_s, result documents)."""
    latencies, documents = [], []
    for query in queries:
        start = time.perf_counter()
        response = client.query(bbox=query["bbox"], time_range=query["time"])
        latencies.append(time.perf_counter() - start)
        if response.get("status") != "ok":
            raise RuntimeError(f"query failed: {response}")
        documents.append(result_document(response))
    return latencies, documents


def summarize(latencies: list[float]) -> dict:
    ordered = sorted(latencies)
    return {
        "median_ms": round(statistics.median(latencies) * 1e3, 3),
        "mean_ms": round(statistics.fmean(latencies) * 1e3, 3),
        "max_ms": round(ordered[-1] * 1e3, 3),
        "total_ms": round(sum(latencies) * 1e3, 3),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--n", type=int, default=50_000, help="event count")
    parser.add_argument("--workers", type=int, default=4, help="daemon query workers")
    parser.add_argument("--smoke", action="store_true", help="small-n CI mode")
    parser.add_argument(
        "--out",
        type=Path,
        default=REPO_ROOT / "BENCH_serve.json",
        help="output JSON path",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        args.n = min(args.n, 8_000)

    print(f"[bench-serve] generating {args.n} events", flush=True)
    events = generate_nyc_events(args.n, seed=101, days=30)
    with tempfile.TemporaryDirectory(prefix="bench-serve-") as tmp:
        dataset = Path(tmp) / "nyc"
        save_dataset(dataset, events, "event", partitioner=TSTRPartitioner(4, 4))

        server = QueryServer(dataset, ServeConfig(workers=args.workers))
        host, port = server.start()
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            wait_until_ready(host, port)
            with ServeClient(host, port) as client:
                cold, cold_docs = run_round(client, QUERIES)
                warm, warm_docs = run_round(client, QUERIES)
            cache = server.result_cache.snapshot()
        finally:
            server.stop()
            thread.join(timeout=5)

    if warm_docs != cold_docs:
        print("[bench-serve] FAIL: warm answers differ from cold answers")
        return 1

    cold_stats, warm_stats = summarize(cold), summarize(warm)
    speedup = round(cold_stats["median_ms"] / max(warm_stats["median_ms"], 1e-6), 2)
    report = {
        "meta": {
            "n": args.n,
            "queries": len(QUERIES),
            "workers": args.workers,
            "smoke": args.smoke,
            "created": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        },
        "results": {
            "cold": cold_stats,
            "warm": warm_stats,
            "median_speedup": speedup,
            "result_cache": {
                "hits": cache["hits"],
                "misses": cache["misses"],
                "bytes": cache["bytes"],
            },
        },
    }
    args.out.write_text(json.dumps(report, indent=2) + "\n")

    print(
        f"  cold  median {cold_stats['median_ms']:9.2f}ms  "
        f"mean {cold_stats['mean_ms']:9.2f}ms"
    )
    print(
        f"  warm  median {warm_stats['median_ms']:9.2f}ms  "
        f"mean {warm_stats['mean_ms']:9.2f}ms"
    )
    print(
        f"  median speedup {speedup}x  "
        f"(result cache: {cache['hits']} hits / {cache['misses']} misses)"
    )
    print(f"[bench-serve] wrote {args.out}")

    if cache["hits"] < len(QUERIES):
        print("[bench-serve] FAIL: warm round did not hit the result cache")
        return 1
    if warm_stats["median_ms"] >= cold_stats["median_ms"]:
        print("[bench-serve] FAIL: warm median not below cold median")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
