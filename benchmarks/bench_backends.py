"""Execution-backend comparison on a CPU-bound extraction stage.

Not a paper table — this validates the pluggable backend subsystem the
way Table 7 validates executors: the same extraction stage (per-
trajectory speed/length features, deliberately iterated to be CPU-bound)
runs on the sequential, thread, and process backends and must produce

* byte-identical collected results (element-wise — a process round-trip
  legitimately breaks cross-element pickle memoization, so whole-list
  byte equality is too strict for any multiprocess engine, Spark's
  included), and
* identical counted-work metric snapshots (tasks, stages, shuffle and
  broadcast records are wall-clock-free, so they must not depend on who
  executed the stage).

On a multi-core box the process backend must also beat sequential
wall-clock; with a single usable core the assertion is skipped with a
printed note (threads/processes cannot beat a loop on one core).
"""

from __future__ import annotations

import os
import pickle
import time

from benchmarks.conftest import fmt, print_table
from repro.datasets import generate_porto_trajectories
from repro.engine import EngineContext
from repro.geometry.distance import haversine_distance

N_TRAJECTORIES = 240
NUM_PARTITIONS = 8
WORKERS = 4
#: Inner repetitions making the per-task compute dominate pickling cost;
#: override for heavier runs: ``REPRO_BENCH_BACKEND_ITERS=200 pytest ...``
WORK_ITERS = int(os.environ.get("REPRO_BENCH_BACKEND_ITERS", "40"))

BACKENDS = ("sequential", "thread", "process")


def heavy_feature(traj):
    """CPU-bound per-trajectory extraction: iterated haversine length."""
    points = [(e.spatial.x, e.spatial.y) for e in traj.entries]
    acc = 0.0
    for _ in range(WORK_ITERS):
        for (lon1, lat1), (lon2, lat2) in zip(points, points[1:]):
            acc += haversine_distance(lon1, lat1, lon2, lat2)
    return (traj.data, round(acc, 6))


def _run(backend: str, trajectories) -> tuple[list, dict, float]:
    options = {"max_workers": WORKERS} if backend != "sequential" else {}
    ctx = EngineContext(
        default_parallelism=NUM_PARTITIONS, backend=backend, backend_options=options
    )
    try:
        rdd = ctx.parallelize(trajectories, NUM_PARTITIONS).map(heavy_feature)
        start = time.perf_counter()
        result = rdd.collect()
        elapsed = time.perf_counter() - start
        return result, ctx.metrics.snapshot(), elapsed
    finally:
        ctx.stop()


def test_backends_cpu_bound_extraction():
    trajectories = generate_porto_trajectories(N_TRAJECTORIES, seed=105, days=30)

    results, snapshots, times = {}, {}, {}
    for backend in BACKENDS:
        results[backend], snapshots[backend], times[backend] = _run(
            backend, trajectories
        )

    rows = [
        [
            backend,
            fmt(times[backend]),
            f"{times['sequential'] / times[backend]:.2f}x",
            snapshots[backend]["tasks"],
            snapshots[backend]["records_out"],
        ]
        for backend in BACKENDS
    ]
    print_table(
        f"Backend comparison — CPU-bound extraction "
        f"({N_TRAJECTORIES} trajectories x {WORK_ITERS} iters, "
        f"{NUM_PARTITIONS} partitions, {WORKERS} workers)",
        ["backend", "wall-clock", "speedup", "tasks", "records"],
        rows,
    )

    baseline = [pickle.dumps(item) for item in results["sequential"]]
    for backend in BACKENDS[1:]:
        assert [pickle.dumps(item) for item in results[backend]] == baseline, (
            f"{backend} backend changed the collected results"
        )
        assert snapshots[backend] == snapshots["sequential"], (
            f"{backend} backend changed the counted-work metrics"
        )

    cores = len(os.sched_getaffinity(0))
    if cores >= 2:
        assert times["process"] < times["sequential"], (
            f"process backend ({fmt(times['process'])}) should beat sequential "
            f"({fmt(times['sequential'])}) on a CPU-bound stage with {cores} cores"
        )
    else:
        print(
            "\nnote: only 1 usable core — process-vs-sequential wall-clock "
            "assertion skipped (no parallel speedup is possible here)."
        )
