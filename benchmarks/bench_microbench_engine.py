"""Supplementary microbenchmarks of the substrates.

Not a paper table — these time the primitives everything else is built
on, so substrate regressions are visible independently of the end-to-end
numbers: R-tree build/query vs brute force, the regular-grid shortcut,
engine map/shuffle throughput, and per-partition selection indexing.
"""

from __future__ import annotations

import random

import pytest

from benchmarks.conftest import fresh_ctx
from repro.core import Selector
from repro.datasets.common import EPOCH_2013
from repro.geometry import Envelope
from repro.index import GridIndex, RTree, STBox
from repro.temporal import Duration

N_BOXES = 5_000
N_QUERIES = 200


@pytest.fixture(scope="module")
def boxes():
    rng = random.Random(7)
    out = []
    for i in range(N_BOXES):
        min_x = rng.uniform(0, 95)
        min_y = rng.uniform(0, 95)
        out.append(
            (
                STBox(
                    (min_x, min_y),
                    (min_x + rng.uniform(0.5, 5), min_y + rng.uniform(0.5, 5)),
                ),
                i,
            )
        )
    return out


@pytest.fixture(scope="module")
def queries():
    rng = random.Random(8)
    out = []
    for _ in range(N_QUERIES):
        x, y = rng.uniform(0, 90), rng.uniform(0, 90)
        out.append(STBox((x, y), (x + 10, y + 10)))
    return out


def test_micro_rtree_build(benchmark, boxes):
    benchmark(lambda: RTree.build(boxes, capacity=16))


def test_micro_rtree_query(benchmark, boxes, queries):
    tree = RTree.build(boxes, capacity=16)

    def run():
        return sum(len(tree.query(q)) for q in queries)

    total = benchmark(run)
    assert total > 0


def test_micro_bruteforce_query(benchmark, boxes, queries):
    def run():
        return sum(
            sum(1 for box, _ in boxes if box.intersects(q)) for q in queries
        )

    total = benchmark(run)
    assert total > 0


def test_micro_packed_rtree_build(benchmark, boxes):
    pytest.importorskip("numpy")
    from repro.columnar import packed_tree_from_boxes

    benchmark(lambda: packed_tree_from_boxes([b for b, _ in boxes], capacity=16))


def test_micro_packed_rtree_query(benchmark, boxes, queries):
    """Array-at-a-time descent vs the pointer-chasing query above."""
    pytest.importorskip("numpy")
    from repro.columnar import packed_tree_from_boxes

    tree = packed_tree_from_boxes([b for b, _ in boxes], capacity=16)

    def run():
        return sum(len(tree.query_rows(q)) for q in queries)

    total = benchmark(run)
    assert total > 0


def test_micro_boxtable_mask(benchmark, boxes, queries):
    """Vectorized intersects over the same boxes, no index at all."""
    np = pytest.importorskip("numpy")
    from repro.columnar import PackedRTree

    mins = np.array([b.mins for b, _ in boxes], dtype=np.float64)
    maxs = np.array([b.maxs for b, _ in boxes], dtype=np.float64)

    def run():
        total = 0
        for q in queries:
            qmin = np.asarray(q.mins)
            qmax = np.asarray(q.maxs)
            mask = np.all((mins <= qmax) & (maxs >= qmin), axis=1)
            total += int(np.count_nonzero(mask))
        return total

    total = benchmark(run)
    # Sanity: the mask agrees with the packed tree on the same inputs.
    tree = PackedRTree(mins, maxs, capacity=16)
    assert total == sum(len(tree.query_rows(q)) for q in queries)


def test_micro_grid_candidates(benchmark, queries):
    grid = GridIndex(STBox((0, 0), (100, 100)), (32, 32))

    def run():
        return sum(len(grid.candidate_cells(q)) for q in queries)

    assert benchmark(run) > 0


def test_micro_engine_map_filter(benchmark):
    ctx = fresh_ctx()
    rdd = ctx.parallelize(range(100_000), 8).persist()
    rdd.count()
    benchmark(lambda: rdd.map(lambda x: x * 2).filter(lambda x: x % 3 == 0).count())


def test_micro_engine_reduce_by_key(benchmark):
    ctx = fresh_ctx()
    rdd = ctx.parallelize([(i % 100, 1) for i in range(100_000)], 8).persist()
    rdd.count()
    benchmark(lambda: rdd.reduce_by_key(lambda a, b: a + b).count())


@pytest.mark.parametrize("columnar", [False, True], ids=["scalar", "columnar"])
def test_micro_selection_indexing(benchmark, bench_events, columnar):
    """Per-partition R-tree selection over in-memory events, both paths."""
    from repro.columnar.cache import invalidate_partition_indexes

    ctx = fresh_ctx()
    rdd = ctx.parallelize(bench_events, 8).persist()
    rdd.count()
    spatial = Envelope(-74.0, 40.7, -73.95, 40.75)
    temporal = Duration(EPOCH_2013, EPOCH_2013 + 5 * 86_400.0)
    selector = Selector(spatial, temporal, use_columnar=columnar)

    def run():
        # Cold each round: the cache satellite would otherwise hide the
        # index build this microbench exists to time.
        invalidate_partition_indexes()
        return selector.select(ctx, rdd).count()

    benchmark(run)


def test_micro_report(benchmark, boxes, queries):
    """Pruning factor summary: counted intersection tests per query."""

    def measure():
        tree = RTree.build(boxes, capacity=16)
        tree.stats.reset()
        for q in queries:
            tree.query(q)
        indexed_tests = tree.stats.entry_tests + tree.stats.node_tests
        brute_tests = len(boxes) * len(queries)
        return indexed_tests, brute_tests

    indexed, brute = benchmark.pedantic(measure, rounds=1, iterations=1)
    print(
        f"\nR-tree pruning: {indexed:,} tests vs brute-force {brute:,} "
        f"({brute / indexed:.1f}x fewer)"
    )
    assert indexed < brute
