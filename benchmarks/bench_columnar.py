"""Scalar-vs-columnar speedup benchmark (``BENCH_columnar.json``).

Times the hot paths the :mod:`repro.columnar` kernels vectorize —
selection filtering, partition-id assignment, regular-structure
singular→collective allocation, and the end-to-end extraction phase
(``extract_sm_flow`` over NYC events, ``extract_raster_speed`` over
Porto trajectories, each fed by a real select→convert pipeline) — with
``use_columnar`` off vs on, over identical inputs, and records the
speedups into ``BENCH_columnar.json``.  Every workload also cross-checks
parity (identical selected identities / partition ids / cell contents /
extracted features) so a timing row can never hide a wrong answer.

The ``cold_load_*`` workloads time the storage layer instead: a full
metadata-pruned selection from *disk* over the same dataset written in
the v1 (whole-partition pickle) and v2 (mmap columnar,
:mod:`repro.stio.blockv2`) block formats, with every process-level cache
dropped between runs.  ``cold_load_pruned`` uses a narrow query — the
regime v2 exists for, where it unpickles only matching rows;
``cold_load_broad`` keeps most of the data and documents the worst case
(per-row unpickling cannot beat one monolithic ``pickle.loads`` when
nearly every row survives, so that row is informational, not gated).

Run the full-size record (100k instances, sequential backend)::

    PYTHONPATH=src python benchmarks/bench_columnar.py

CI smoke (small n, all backends, nonzero exit if columnar is slower)::

    PYTHONPATH=src python benchmarks/bench_columnar.py --smoke \
        --backends sequential,thread,process
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from repro.core import Selector  # noqa: E402
from repro.core.converters.base import AllocationStats, allocate  # noqa: E402
from repro.core.converters.singular_to_collective import (  # noqa: E402
    Event2SmConverter,
    Traj2RasterConverter,
)
from repro.core.extractors.raster import RasterSpeedExtractor  # noqa: E402
from repro.core.extractors.spatialmap import SmFlowExtractor  # noqa: E402
from repro.core.structures import (  # noqa: E402
    RasterStructure,
    SpatialMapStructure,
    TimeSeriesStructure,
)
from repro.datasets import (  # noqa: E402
    PORTO_BBOX,
    generate_nyc_events,
    generate_porto_trajectories,
)
from repro.datasets.common import EPOCH_2013  # noqa: E402
from repro.datasets.porto import PORTO_START  # noqa: E402
from repro.engine import EngineContext  # noqa: E402
from repro.geometry import Envelope  # noqa: E402
from repro.partitioners import TSTRPartitioner  # noqa: E402
from repro.temporal import Duration  # noqa: E402

REPO_ROOT = Path(__file__).resolve().parent.parent

#: The ST range every selection workload queries — covers the NYC
#: hotspot band so the filter keeps a meaningful fraction of the input.
QUERY_SPATIAL = Envelope(-74.0, 40.7, -73.92, 40.78)
QUERY_TEMPORAL = Duration(EPOCH_2013, EPOCH_2013 + 10 * 86_400.0)

#: Narrow range for the pruned cold-load workload — high selectivity is
#: the regime the v2 pushdown targets (decode only matching rows).
PRUNED_SPATIAL = Envelope(-73.99, 40.72, -73.96, 40.75)
PRUNED_TEMPORAL = Duration(EPOCH_2013, EPOCH_2013 + 2 * 86_400.0)

#: The trajectory extraction workload runs over Porto-shaped data — the
#: paper's Figure 9 raster-speed case study.
PORTO_SPATIAL = Envelope(
    PORTO_BBOX.min_lon, PORTO_BBOX.min_lat, PORTO_BBOX.max_lon, PORTO_BBOX.max_lat
)
PORTO_TEMPORAL = Duration(PORTO_START, PORTO_START + 10 * 86_400.0)


def _best_of(reps: int, fn) -> float:
    best = float("inf")
    for _ in range(reps):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _identities(instances) -> list:
    return sorted(inst.identity() for inst in instances)


def _bench_selection(ctx, events, reps, index, warm):
    """Selector._filter scalar vs columnar; cold runs rebuild the index."""
    from repro.columnar.cache import invalidate_partition_indexes

    rdd = ctx.parallelize(events, ctx.default_parallelism).persist()
    rdd.count()
    results = {}
    timings = {}
    for columnar in (False, True):
        selector = Selector(
            QUERY_SPATIAL, QUERY_TEMPORAL, index=index, use_columnar=columnar
        )

        def run():
            if not warm:
                invalidate_partition_indexes()
            return selector.select(ctx, rdd).collect()

        if warm:
            invalidate_partition_indexes()
            run()  # populate the per-partition index cache
        results[columnar] = _identities(run())
        timings[columnar] = _best_of(reps, run)
    if results[False] != results[True]:
        raise AssertionError("selection parity violation: scalar != columnar")
    return timings[False], timings[True]


def _bench_partition_assign(events, reps):
    """Fitted T-STR id assignment: scalar loop vs ``assign_batch``."""
    partitioner = TSTRPartitioner(4, 4)
    partitioner.fit(events[:: max(1, len(events) // 2_000)])
    scalar = lambda: [partitioner.assign(inst) for inst in events]  # noqa: E731
    columnar = lambda: partitioner.assign_batch(events)  # noqa: E731
    if scalar() != list(columnar()):
        raise AssertionError("partition-assign parity violation")
    return _best_of(reps, scalar), _best_of(reps, columnar)


def _bench_conversion_regular(events, reps):
    """Regular-structure allocation: per-instance grid walk vs the
    analytic batch range kernel."""
    structure = TimeSeriesStructure.regular(QUERY_TEMPORAL, 96)
    timings = {}
    cells = {}
    stats = {}
    for columnar in (False, True):
        st = AllocationStats()
        cells[columnar] = allocate(
            events, structure, method="regular", stats=st, use_columnar=columnar
        )
        stats[columnar] = st.snapshot()
        timings[columnar] = _best_of(
            reps,
            lambda c=columnar: allocate(
                events, structure, method="regular", use_columnar=c
            ),
        )
    same_cells = all(
        [id(i) for i in a] == [id(i) for i in b]
        for a, b in zip(cells[False], cells[True])
    )
    if not same_cells or stats[False] != stats[True]:
        raise AssertionError("conversion parity violation: scalar != columnar")
    return timings[False], timings[True]


def _bench_extraction(ctx, converted_parts, extractor_factory, reps):
    """Extraction phase, scalar vs columnar, over a converted pipeline.

    The workload is the paper's full select→convert→extract path; the
    selection and conversion phases ran once up front (their scalar/
    columnar comparison has its own rows above), so the timed section
    isolates what ``use_columnar`` toggles here: the Extraction phase.
    """
    materialized = ctx.from_partitions(converted_parts)
    features = {}
    timings = {}
    for columnar in (False, True):
        extractor = extractor_factory()
        extractor.use_columnar = columnar
        features[columnar] = extractor.extract(materialized).cell_values()
        timings[columnar] = _best_of(
            reps, lambda e=extractor: e.extract(materialized)
        )
    if features[False] != features[True]:
        raise AssertionError("extraction parity violation: scalar != columnar")
    return timings[False], timings[True]


def _extract_sm_flow_parts(ctx, events):
    """select→convert partitions for the event flow extraction workload."""
    structure = SpatialMapStructure.regular(QUERY_SPATIAL, 64, 64)
    selected = Selector(QUERY_SPATIAL, QUERY_TEMPORAL).select(
        ctx, ctx.parallelize(events, ctx.default_parallelism)
    )
    return Event2SmConverter(structure).convert(selected)._collect_partitions()


def _extract_raster_speed_parts(ctx, trajectories):
    """select→convert partitions for the raster-speed extraction workload."""
    structure = RasterStructure.regular(PORTO_SPATIAL, PORTO_TEMPORAL, 8, 8, 40)
    selected = Selector(PORTO_SPATIAL, PORTO_TEMPORAL).select(
        ctx, ctx.parallelize(trajectories, ctx.default_parallelism)
    )
    return Traj2RasterConverter(structure).convert(selected)._collect_partitions()


def _bench_cold_load(ctx, directories, reps, spatial, temporal):
    """Full disk selection, v1 vs v2 blocks, all process caches cold."""
    from repro.columnar.cache import invalidate_partition_indexes

    results = {}
    timings = {}
    for fmt, directory in directories.items():

        def run(d=directory):
            invalidate_partition_indexes()
            return Selector(spatial, temporal).select(ctx, d).collect()

        results[fmt] = _identities(run())
        timings[fmt] = _best_of(reps, run)
    if results["v1"] != results["v2"]:
        raise AssertionError("cold-load parity violation: v1 != v2")
    return timings["v1"], timings["v2"]


def run_backend(
    backend: str,
    events,
    reps: int,
    directories: dict[str, Path] | None = None,
    trajectories=None,
) -> list[dict]:
    ctx = EngineContext(default_parallelism=8, backend=backend)
    rows = []

    def record(workload, pair, n=None):
        scalar_s, columnar_s = pair
        rows.append(
            {
                "workload": workload,
                "backend": backend,
                "n": len(events) if n is None else n,
                "scalar_s": round(scalar_s, 6),
                "columnar_s": round(columnar_s, 6),
                "speedup": round(scalar_s / columnar_s, 2) if columnar_s else None,
            }
        )

    def record_format(workload, pair):
        v1_s, v2_s = pair
        rows.append(
            {
                "workload": workload,
                "backend": backend,
                "n": len(events),
                "v1_s": round(v1_s, 6),
                "v2_s": round(v2_s, 6),
                "speedup": round(v1_s / v2_s, 2) if v2_s else None,
            }
        )

    try:
        record(
            "selection_filter",
            _bench_selection(ctx, events, reps, index=True, warm=False),
        )
        record(
            "selection_filter_warm",
            _bench_selection(ctx, events, reps, index=True, warm=True),
        )
        # index=False compares a pure per-instance Python scan against the
        # BoxTable mask kernel; warm because the table is extracted once
        # per resident partition and cached (steady-state comparison).
        record(
            "selection_scan",
            _bench_selection(ctx, events, reps, index=False, warm=True),
        )
        record("partition_assign", _bench_partition_assign(events, reps))
        record("conversion_regular", _bench_conversion_regular(events, reps))
        record(
            "extract_sm_flow",
            _bench_extraction(
                ctx, _extract_sm_flow_parts(ctx, events), SmFlowExtractor, reps
            ),
        )
        if trajectories is not None:
            record(
                "extract_raster_speed",
                _bench_extraction(
                    ctx,
                    _extract_raster_speed_parts(ctx, trajectories),
                    RasterSpeedExtractor,
                    reps,
                ),
                n=len(trajectories),
            )
        if directories is not None:
            record_format(
                "cold_load_pruned",
                _bench_cold_load(
                    ctx, directories, reps, PRUNED_SPATIAL, PRUNED_TEMPORAL
                ),
            )
            record_format(
                "cold_load_broad",
                _bench_cold_load(
                    ctx, directories, reps, QUERY_SPATIAL, QUERY_TEMPORAL
                ),
            )
    finally:
        ctx.backend.stop()
    return rows


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--n", type=int, default=100_000, help="instance count")
    parser.add_argument("--reps", type=int, default=3, help="best-of repetitions")
    parser.add_argument(
        "--backends",
        default="sequential",
        help="comma-separated execution backends to time",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small-n CI mode: exit nonzero if columnar is slower than scalar",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.95,
        help="smoke-mode failure threshold on speedup (noise guard)",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=REPO_ROOT / "BENCH_columnar.json",
        help="output JSON path",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        args.n = min(args.n, 5_000)

    backends = [b.strip() for b in args.backends.split(",") if b.strip()]
    events = generate_nyc_events(args.n, seed=101, days=30)
    # Long trajectories (Porto-shaped) for the raster-speed extraction
    # workload: the scalar path rescans every trajectory entry per cell,
    # which is exactly the per-object cost the CellTable kernels remove.
    trajectories = generate_porto_trajectories(
        max(100, args.n // 50), seed=202, days=10, min_points=20, max_points=120
    )

    import shutil
    import tempfile

    from repro.stio import save_dataset

    workdir = Path(tempfile.mkdtemp(prefix="bench-coldload-"))
    directories = {}
    try:
        for fmt in ("v1", "v2"):
            directories[fmt] = workdir / fmt
            save_dataset(
                directories[fmt],
                events,
                "event",
                partitioner=TSTRPartitioner(4, 4),
                block_format=fmt,
            )
        results = []
        for backend in backends:
            print(f"[bench-columnar] backend={backend} n={args.n}", flush=True)
            results.extend(
                run_backend(
                    backend,
                    events,
                    args.reps,
                    directories,
                    trajectories=trajectories,
                )
            )
    finally:
        shutil.rmtree(workdir, ignore_errors=True)

    report = {
        "meta": {
            "n": args.n,
            "reps": args.reps,
            "backends": backends,
            "smoke": args.smoke,
            "created": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        },
        "results": results,
    }
    args.out.write_text(json.dumps(report, indent=2) + "\n")

    width = max(len(r["workload"]) for r in results)
    failures = []
    for r in results:
        if "v1_s" in r:
            base_label, fast_label = "v1", "v2"
            base_s, fast_s = r["v1_s"], r["v2_s"]
        else:
            base_label, fast_label = "scalar", "columnar"
            base_s, fast_s = r["scalar_s"], r["columnar_s"]
        print(
            f"  {r['workload']:<{width}}  {r['backend']:<10}"
            f"  {base_label:>6} {base_s * 1000:9.1f}ms"
            f"  {fast_label:>8} {fast_s * 1000:9.1f}ms"
            f"  speedup {r['speedup']:6.2f}x"
        )
        # cold_load_broad is informational: when nearly every row
        # survives, per-row unpickling has no pruning to win with.  The
        # extraction rows are parity-gated (inside _bench_extraction) but
        # speedup-informational at smoke size — a handful of instances
        # per cell is dominated by timer noise, not kernel time.
        informational = {"cold_load_broad", "extract_sm_flow", "extract_raster_speed"}
        if (
            args.smoke
            and r["workload"] not in informational
            and r["speedup"] < args.tolerance
        ):
            failures.append((r, base_label, fast_label))
    print(f"[bench-columnar] wrote {args.out}")
    if failures:
        for r, base_label, fast_label in failures:
            print(
                f"[bench-columnar] FAIL: {r['workload']} on {r['backend']} "
                f"{fast_label} slower than {base_label} "
                f"({r['speedup']}x < {args.tolerance}x)",
                file=sys.stderr,
            )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
