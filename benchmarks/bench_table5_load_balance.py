"""Table 5 — load balance: CV and OV per partitioning method.

Paper (1024 partitions, gt=gs=32):

====================  ========  ========  =======  =======
method                CV_event  OV_event  CV_traj  OV_traj
====================  ========  ========  =======  =======
Native Spark (hash)     0.0018    454.63   0.0057    72.19
GeoSpark (KDB)          0.15        1.56   0.22       0.41
GeoMesa (grid)          0.81       13.44   0.052    283.1
ST4ML (T-STR)           0.063       0.86   0.045     0.074
====================  ========  ========  =======  =======

Shapes to reproduce: hash has the best CV but catastrophic OV; spatial-only
partitioners are mid-pack; T-STR is the only method good on both.  We use
64 partitions (gt=gs=8) at laptop scale.
"""

from __future__ import annotations

import math

from benchmarks.conftest import fresh_ctx, print_table
from repro.engine.shuffle import stable_hash
from repro.instances.base import Instance
from repro.partitioners import (
    HashPartitioner,
    KDBPartitioner,
    STPartitioner,
    TSTRPartitioner,
    evaluate_partitioning,
)
from repro.partitioners.base import UNBOUNDED
from repro.index.boxes import STBox

N_PARTITIONS = 64
GT = GS = 8


class GeoMesaGridPartitioner(STPartitioner):
    """GeoMesa's Spark connector default: a fixed coarse spatial grid.

    Cells are degree-rounded buckets hashed to partitions — spatially
    coherent but blind to density and to time, which is what produces its
    poor CV in the paper's comparison.
    """

    def __init__(self, num_partitions: int, cell_degrees: float = 0.02):
        super().__init__()
        self._n = num_partitions
        self.cell_degrees = cell_degrees

    def fit(self, sample) -> None:
        self._fitted = True

    @property
    def num_partitions(self) -> int:
        return self._n

    def assign(self, instance: Instance) -> int:
        c = instance.spatial_extent.centroid()
        cell = (
            math.floor(c.x / self.cell_degrees),
            math.floor(c.y / self.cell_degrees),
        )
        return stable_hash(cell) % self._n

    def boundaries(self):
        full = STBox((-UNBOUNDED,) * 3, (UNBOUNDED,) * 3)
        return [full] * self._n


METHODS = [
    ("native-spark(hash)", lambda: HashPartitioner(N_PARTITIONS)),
    ("geospark(kdb)", lambda: KDBPartitioner(N_PARTITIONS)),
    ("geomesa(grid)", lambda: GeoMesaGridPartitioner(N_PARTITIONS)),
    ("st4ml(t-str)", lambda: TSTRPartitioner(GT, GS)),
]


def layout(partitioner, instances):
    ctx = fresh_ctx()
    rdd = ctx.parallelize(instances, 8)
    out = partitioner.partition(rdd)
    return out._collect_partitions()


def measure_all(events, trajectories):
    results = {}
    for name, factory in METHODS:
        ev_metrics = evaluate_partitioning(layout(factory(), events))
        tr_metrics = evaluate_partitioning(layout(factory(), trajectories))
        results[name] = (ev_metrics, tr_metrics)
    return results


def test_table5_report(benchmark, bench_events, bench_trajectories):
    events = bench_events[:10_000]
    trajectories = bench_trajectories[:800]

    results = benchmark.pedantic(
        measure_all, args=(events, trajectories), rounds=1, iterations=1
    )
    rows = [
        [
            name,
            f"{ev['cv']:.4f}",
            f"{ev['ov']:.2f}",
            f"{tr['cv']:.4f}",
            f"{tr['ov']:.2f}",
        ]
        for name, (ev, tr) in results.items()
    ]
    print_table(
        "Table 5: load balance (CV) and ST locality (OV)",
        ["method", "CV_event", "OV_event", "CV_traj", "OV_traj"],
        rows,
    )

    hash_ev, _ = results["native-spark(hash)"]
    tstr_ev, tstr_tr = results["st4ml(t-str)"]
    kdb_ev, _ = results["geospark(kdb)"]
    # Paper shapes: hash best CV / worst OV; T-STR low on both; spatial-only
    # methods beat hash on OV but lose to T-STR on the combined picture.
    assert hash_ev["cv"] < tstr_ev["cv"]
    assert hash_ev["ov"] > 10 * tstr_ev["ov"]
    assert tstr_ev["ov"] <= kdb_ev["ov"] * 1.5
    assert tstr_ev["ov"] < 2.0
    assert tstr_tr["ov"] < 2.0
