"""Shared benchmark fixtures and reporting helpers.

Benchmarks are scaled-down but *shape-preserving* reproductions of the
paper's evaluation: dataset sizes fit a laptop, yet every comparison keeps
the original structure (same systems, same workloads, same sweeps), and
each module prints the rows/series its paper table or figure reports —
wall-clock next to counted work.

Run: ``pytest benchmarks/ --benchmark-only``
"""

from __future__ import annotations

import os
import sys
import time
from pathlib import Path

import pytest

# Allow `from tests.conftest import ...` helpers when invoked on benchmarks/.
sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from repro.baselines import GeoMesaLike, GeoSparkLike  # noqa: E402
from repro.datasets import (  # noqa: E402
    generate_nyc_events,
    generate_porto_trajectories,
)
from repro.engine import EngineContext  # noqa: E402
from repro.partitioners import TSTRPartitioner  # noqa: E402
from repro.stio import save_dataset  # noqa: E402

#: Record budgets — bump these for heavier runs.
N_EVENTS = 20_000
N_TRAJECTORIES = 1_500

#: Execution backend every bench context uses; override per run with e.g.
#: ``REPRO_BENCH_BACKEND=process pytest benchmarks/bench_fig5_selection.py``
#: to compare Figure 5/7 numbers across backends.
BENCH_BACKEND = os.environ.get("REPRO_BENCH_BACKEND", "sequential")

#: Opt-in per-benchmark tracing: ``REPRO_BENCH_PROFILE=1`` installs a tracer
#: around every benchmark and writes ``results/trace-<test>.{trace.json,…}``.
#: Off by default — tracing materializes each phase eagerly, which changes
#: the evaluation boundaries the wall-clock figures are supposed to measure.
BENCH_PROFILE = os.environ.get("REPRO_BENCH_PROFILE", "") not in ("", "0")


@pytest.fixture(autouse=True)
def bench_trace(request):
    if not BENCH_PROFILE:
        yield None
        return
    from repro.obs import Tracer, installed, write_trace_files

    tracer = Tracer()
    with installed(tracer):
        yield tracer
    safe = request.node.name.replace("/", "_").replace("[", "-").rstrip("]")
    out = Path(__file__).resolve().parent / "results" / f"trace-{safe}"
    paths = write_trace_files(tracer, out)
    print(f"\n[bench-trace] {paths['chrome']}")


def fresh_ctx(backend: str | None = None) -> EngineContext:
    return EngineContext(default_parallelism=8, backend=backend or BENCH_BACKEND)


@pytest.fixture(scope="session")
def bench_events():
    return generate_nyc_events(N_EVENTS, seed=101, days=30)


@pytest.fixture(scope="session")
def bench_trajectories():
    return generate_porto_trajectories(N_TRAJECTORIES, seed=102, days=30)


@pytest.fixture(scope="session")
def bench_dirs(tmp_path_factory, bench_events, bench_trajectories):
    """All three systems' on-disk layouts for both datasets."""
    root = tmp_path_factory.mktemp("bench-data")
    ctx = fresh_ctx()
    save_dataset(
        root / "events_st4ml", bench_events, "event",
        partitioner=TSTRPartitioner(6, 5), ctx=ctx,
    )
    save_dataset(
        root / "trajs_st4ml", bench_trajectories, "trajectory",
        partitioner=TSTRPartitioner(6, 5), ctx=ctx,
    )
    GeoSparkLike.ingest(bench_events, root / "events_gs")
    GeoSparkLike.ingest(bench_trajectories, root / "trajs_gs")
    GeoMesaLike.ingest(bench_events, root / "events_gm", block_records=512)
    GeoMesaLike.ingest(bench_trajectories, root / "trajs_gm", block_records=128)
    return root


class Stopwatch:
    """Tiny timing helper for sweep tables printed by report benchmarks."""

    def __init__(self) -> None:
        self.start = time.perf_counter()

    def lap(self) -> float:
        now = time.perf_counter()
        elapsed = now - self.start
        self.start = now
        return elapsed


#: Report tables are appended here as well as printed, so the paper-shaped
#: results survive pytest's output capture (visible live with ``-s``).
REPORT_FILE = Path(__file__).resolve().parent / "results" / "report_tables.txt"


def print_table(title: str, headers: list[str], rows: list[list]) -> None:
    """Aligned plain-text table: printed (survives ``-s``) and appended to
    ``benchmarks/results/report_tables.txt`` (survives capture)."""
    widths = [
        max(len(str(headers[i])), *(len(str(r[i])) for r in rows)) if rows else len(str(headers[i]))
        for i in range(len(headers))
    ]
    lines = [f"\n=== {title} ==="]
    lines.append("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    for row in rows:
        lines.append("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))
    text = "\n".join(lines)
    print(text)
    sys.stdout.flush()
    REPORT_FILE.parent.mkdir(parents=True, exist_ok=True)
    with open(REPORT_FILE, "a") as f:
        f.write(text + "\n")


def fmt(seconds: float) -> str:
    if seconds < 1.0:
        return f"{seconds * 1000:.1f}ms"
    return f"{seconds:.2f}s"
