"""Ablations of ST4ML's stated design choices.

Three decisions the paper argues for qualitatively, measured head-to-head:

1. **select-then-partition vs partition-then-select** (Section 3.1): ST4ML
   filters with all executors first and shuffles only survivors; spatial
   query systems partition first.  We compare shuffled record volume and
   time for a selective query.
2. **broadcast-structure vs shuffle-to-cells** (Section 3.2.2): ST4ML
   broadcasts the (empty) collective structure and allocates locally; the
   alternative shuffles every record to a cell-owning partition.  We
   compare shuffle volume and time.
3. **map-side combine vs plain groupByKey** (Sections 2.2 / 3.2.2): the
   event→trajectory conversion's map-side join against the naive shuffle.
"""

from __future__ import annotations

from benchmarks.conftest import Stopwatch, fmt, fresh_ctx, print_table
from repro.engine.costmodel import estimate_cost
from repro.core import Selector
from repro.core.converters import Event2SmConverter, Event2TrajConverter, Traj2EventConverter
from repro.core.extractors import SmFlowExtractor
from repro.core.structures import SpatialMapStructure
from repro.datasets import NYC_BBOX
from repro.datasets.common import EPOCH_2013
from repro.geometry import Envelope
from repro.partitioners import TSTRPartitioner
from repro.temporal import Duration

QUERY_S = Envelope(-74.02, 40.62, -73.95, 40.72)
QUERY_T = Duration(EPOCH_2013, EPOCH_2013 + 10 * 86_400.0)


def select_then_partition(events):
    ctx = fresh_ctx()
    rdd = ctx.parallelize(events, 8)
    selector = Selector(QUERY_S, QUERY_T, partitioner=TSTRPartitioner(3, 3))
    selector.select(ctx, rdd).count()
    return ctx.metrics.shuffle_records


def partition_then_select(events):
    ctx = fresh_ctx()
    rdd = ctx.parallelize(events, 8)
    partitioned = TSTRPartitioner(3, 3).partition(rdd)
    Selector(QUERY_S, QUERY_T).select(ctx, partitioned).count()
    return ctx.metrics.shuffle_records


def test_ablation_partition_order(benchmark, bench_events):
    def run():
        watch = Stopwatch()
        shuffled_ours = select_then_partition(bench_events)
        t_ours = watch.lap()
        shuffled_theirs = partition_then_select(bench_events)
        t_theirs = watch.lap()
        print_table(
            "Ablation 1: select-then-partition (ST4ML) vs partition-then-select",
            ["plan", "time", "shuffled_records"],
            [
                ["select→partition", fmt(t_ours), shuffled_ours],
                ["partition→select", fmt(t_theirs), shuffled_theirs],
            ],
        )
        return shuffled_ours, shuffled_theirs

    ours, theirs = benchmark.pedantic(run, rounds=1, iterations=1)
    # Filtering first shuffles only the selected subset.
    assert ours < theirs


def broadcast_conversion(events, structure):
    ctx = fresh_ctx()
    rdd = ctx.parallelize(events, 8)
    converter = Event2SmConverter(structure)
    converted = converter.convert(rdd)
    counts = SmFlowExtractor().extract(converted).cell_values()
    return ctx.metrics.shuffle_records, counts


def shuffle_to_cells_conversion(events, structure):
    """The rejected design: route every record to a cell-owner partition."""
    ctx = fresh_ctx()
    rdd = ctx.parallelize(events, 8)

    def cells_of(ev):
        return structure.candidate_cells(ev.spatial_extent, ev.temporal_extent, "auto")

    counts_map = (
        rdd.flat_map(lambda ev: [(c, 1) for c in cells_of(ev)])
        .group_by_key(8)
        .map(lambda kv: (kv[0], len(kv[1])))
        .collect_as_map()
    )
    counts = [counts_map.get(i, 0) for i in range(structure.n_cells)]
    return ctx.metrics.shuffle_records, counts


def test_ablation_broadcast_structure(benchmark, bench_events):
    structure = SpatialMapStructure.regular(NYC_BBOX.to_envelope(), 16, 16)
    events = bench_events[:10_000]

    def run():
        watch = Stopwatch()
        shuffled_bc, counts_bc = broadcast_conversion(events, structure)
        t_bc = watch.lap()
        shuffled_sh, counts_sh = shuffle_to_cells_conversion(events, structure)
        t_sh = watch.lap()
        assert counts_bc == counts_sh  # identical features either way
        print_table(
            "Ablation 2: broadcast structure (ST4ML) vs shuffle data to cells",
            ["plan", "time", "shuffled_records"],
            [
                ["broadcast structure", fmt(t_bc), shuffled_bc],
                ["shuffle to cells", fmt(t_sh), shuffled_sh],
            ],
        )
        return shuffled_bc, shuffled_sh

    shuffled_bc, shuffled_sh = benchmark.pedantic(run, rounds=1, iterations=1)
    assert shuffled_bc == 0  # the whole point: no data movement
    assert shuffled_sh >= len(events)


def test_ablation_mapside_join(benchmark, bench_trajectories):
    trajs = bench_trajectories[:600]

    def run():
        ctx = fresh_ctx()
        events = Traj2EventConverter().convert(ctx.parallelize(trajs, 8)).persist()
        n_events = events.count()

        ctx.metrics.reset()
        watch = Stopwatch()
        Event2TrajConverter().convert(events).count()
        t_mapside = watch.lap()
        shuffled_mapside = ctx.metrics.shuffle_records

        cost_mapside = estimate_cost(ctx.metrics).total_seconds

        ctx.metrics.reset()
        watch = Stopwatch()
        (
            events.map(lambda ev: (ev.data, (ev.spatial.x, ev.spatial.y, ev.temporal.start)))
            .group_by_key()
            .map(lambda kv: len(kv[1]))
            .count()
        )
        t_group = watch.lap()
        shuffled_group = ctx.metrics.shuffle_records
        cost_group = estimate_cost(ctx.metrics).total_seconds

        # Estimated *cluster* time (analytic model over counted work): this
        # is where the 33x shuffle-volume gap becomes a time gap even
        # though in-process wall-clock hides it.
        print_table(
            "Ablation 3: map-side combine (ST4ML event→traj) vs groupByKey",
            ["plan", "local_time", "est_cluster_time", "shuffled_records", "events"],
            [
                ["reduceByKey (map-side)", fmt(t_mapside), fmt(cost_mapside),
                 shuffled_mapside, n_events],
                ["groupByKey (naive)", fmt(t_group), fmt(cost_group),
                 shuffled_group, n_events],
            ],
        )
        return shuffled_mapside, shuffled_group, n_events

    mapside, grouped, n_events = benchmark.pedantic(run, rounds=1, iterations=1)
    assert grouped == n_events        # naive shuffles every event
    assert mapside <= 600 * 8         # map-side bounded by keys x partitions
    assert mapside < grouped
