"""Streaming ingest-and-extract benchmark (``BENCH_stream.json``).

Measures what the incremental path buys over re-running from scratch.
A feed of K daily micro-batches is committed through
``StDataset.ingest``; after every commit the week-long hourly-flow
feature is brought up to date twice —

* **incremental** — ``Pipeline.run_incremental`` extracts only the new
  blocks and merges their partials into running state;
* **full recompute** — ``Pipeline.run`` re-selects, re-converts, and
  re-extracts the whole dataset, the only option a batch system has.

Both maintain the *same* feature, and the run cross-checks them for
bit-identical output after every batch (exit 1 on divergence, and exit
1 unless the incremental path is faster in total — the regression guard
the acceptance criteria ask for).  Per-batch ingest latency (T-STR fit
+ block write + transactional metadata/watermark commit) is recorded
alongside.

Run the full-size record::

    PYTHONPATH=src python benchmarks/bench_stream.py

CI smoke (small n)::

    PYTHONPATH=src python benchmarks/bench_stream.py --smoke
"""

from __future__ import annotations

import argparse
import json
import random
import statistics
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from repro import (  # noqa: E402
    Duration,
    EngineContext,
    Envelope,
    Pipeline,
    Selector,
    StDataset,
    TimeSeriesStructure,
    TSTRPartitioner,
)
from repro.core.converters import Event2TsConverter  # noqa: E402
from repro.core.extractors import TsFlowExtractor  # noqa: E402
from repro.instances import Event  # noqa: E402

REPO_ROOT = Path(__file__).resolve().parent.parent

DAY = 86_400.0
AREA = Envelope(0.0, 0.0, 10.0, 10.0)


def day_batch(day: int, n: int) -> list[Event]:
    rng = random.Random(9000 + day)
    return [
        Event.of_point(
            rng.uniform(0.0, 10.0),
            rng.uniform(0.0, 10.0),
            day * DAY + rng.uniform(0.0, DAY),
            data=i,
        )
        for i in range(n)
    ]


def make_pipeline(span: Duration) -> Pipeline:
    return Pipeline(
        selector=Selector(AREA, span),
        converter=Event2TsConverter(TimeSeriesStructure.of_interval(span, 3_600.0)),
        extractor=TsFlowExtractor(),
    )


def summarize(latencies: list[float]) -> dict:
    ordered = sorted(latencies)
    return {
        "median_ms": round(statistics.median(latencies) * 1e3, 3),
        "mean_ms": round(statistics.fmean(latencies) * 1e3, 3),
        "max_ms": round(ordered[-1] * 1e3, 3),
        "total_ms": round(sum(latencies) * 1e3, 3),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--days", type=int, default=14, help="micro-batch count")
    parser.add_argument("--per-day", type=int, default=20_000, help="events per batch")
    parser.add_argument("--smoke", action="store_true", help="small-n CI mode")
    parser.add_argument(
        "--out",
        type=Path,
        default=REPO_ROOT / "BENCH_stream.json",
        help="output JSON path",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        args.days = min(args.days, 6)
        args.per_day = min(args.per_day, 2_000)

    span = Duration(0.0, args.days * DAY)
    ctx = EngineContext(default_parallelism=4)
    incremental_pipeline = make_pipeline(span)

    print(
        f"[bench-stream] {args.days} batches x {args.per_day} events",
        flush=True,
    )
    ingest_lat, inc_lat, full_lat = [], [], []
    with tempfile.TemporaryDirectory(prefix="bench-stream-") as tmp:
        feed = Path(tmp) / "feed"
        ds = StDataset(feed)
        state = None
        for day in range(args.days):
            batch = day_batch(day, args.per_day)

            start = time.perf_counter()
            ds.ingest(
                batch,
                partitioner=TSTRPartitioner(1, 4),
                instance_type="event" if day == 0 else None,
            )
            ingest_lat.append(time.perf_counter() - start)

            start = time.perf_counter()
            run = incremental_pipeline.run_incremental(ctx, feed, state=state)
            inc_lat.append(time.perf_counter() - start)
            state = run.state

            start = time.perf_counter()
            full = make_pipeline(span).run(ctx, feed)
            full_lat.append(time.perf_counter() - start)

            if run.result.cell_values() != full.cell_values():
                print(f"[bench-stream] FAIL: parity violated at batch {day}")
                return 1

    inc_stats, full_stats = summarize(inc_lat), summarize(full_lat)
    speedup = round(full_stats["total_ms"] / max(inc_stats["total_ms"], 1e-6), 2)
    report = {
        "meta": {
            "days": args.days,
            "per_day": args.per_day,
            "records": args.days * args.per_day,
            "smoke": args.smoke,
            "created": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        },
        "results": {
            "ingest_batch": summarize(ingest_lat),
            "incremental_update": inc_stats,
            "full_recompute": full_stats,
            "incremental_speedup": speedup,
        },
    }
    args.out.write_text(json.dumps(report, indent=2) + "\n")

    print(
        f"  ingest       median {report['results']['ingest_batch']['median_ms']:9.2f}ms "
        f"per batch"
    )
    print(
        f"  incremental  median {inc_stats['median_ms']:9.2f}ms  "
        f"total {inc_stats['total_ms']:9.2f}ms"
    )
    print(
        f"  full         median {full_stats['median_ms']:9.2f}ms  "
        f"total {full_stats['total_ms']:9.2f}ms"
    )
    print(f"  incremental-vs-full speedup {speedup}x  -> {args.out.name}")

    if speedup <= 1.0:
        print("[bench-stream] FAIL: incremental path not faster than recompute")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
