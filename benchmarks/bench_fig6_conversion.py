"""Figure 6 — conversion time: R-tree/regular indexing vs naive Cartesian.

Paper: the optimized singular→collective conversion is up to 23× (events →
time series), 45× (→ spatial map), and 105× (→ raster) faster than the
default Cartesian-product plan, and up to 6× for trajectories; the gain
grows with structure dimensionality and granularity.

All six conversions are swept over structure granularity with both plans;
the report prints time plus counted candidate tests (the mechanism).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import Stopwatch, fmt, fresh_ctx, print_table
from repro.core.converters import (
    Event2RasterConverter,
    Event2SmConverter,
    Event2TsConverter,
    Traj2RasterConverter,
    Traj2SmConverter,
    Traj2TsConverter,
)
from repro.core.structures import (
    RasterStructure,
    SpatialMapStructure,
    TimeSeriesStructure,
)
from repro.datasets import NYC_BBOX, PORTO_BBOX
from repro.datasets.common import EPOCH_2013
from repro.datasets.porto import PORTO_START

N_CONVERT_EVENTS = 4_000
N_CONVERT_TRAJS = 400

#: Granularity sweep: slots for TS, x for x*x spatial maps, y for y*y*y rasters.
TS_SLOTS = [24, 96, 384]
SM_SIZES = [8, 16, 32]
RASTER_SIZES = [4, 8, 12]


def _structures(kind: str, size: int, bbox, t0: float):
    extent = bbox.to_envelope()
    from repro.temporal import Duration

    window = Duration(t0, t0 + 30 * 86_400.0)
    if kind == "ts":
        return TimeSeriesStructure.regular(window, size)
    if kind == "sm":
        return SpatialMapStructure.regular(extent, size, size)
    return RasterStructure.regular(extent, window, size, size, size)


def _converter(kind: str, singular: str, structure, method: str):
    table = {
        ("event", "ts"): Event2TsConverter,
        ("event", "sm"): Event2SmConverter,
        ("event", "raster"): Event2RasterConverter,
        ("traj", "ts"): Traj2TsConverter,
        ("traj", "sm"): Traj2SmConverter,
        ("traj", "raster"): Traj2RasterConverter,
    }
    return table[(singular, kind)](structure, method=method)


def run_conversion(instances, singular, kind, size, bbox, t0, method):
    ctx = fresh_ctx()
    rdd = ctx.parallelize(instances, 8)
    structure = _structures(kind, size, bbox, t0)
    converter = _converter(kind, singular, structure, method)
    converter.convert(rdd, agg=len).count()
    return converter.stats.snapshot()


@pytest.mark.parametrize("method", ["naive", "auto"])
@pytest.mark.parametrize("kind,size", [("ts", 96), ("sm", 16), ("raster", 8)])
def test_fig6_event_conversion(benchmark, bench_events, method, kind, size):
    events = bench_events[:N_CONVERT_EVENTS]
    benchmark.pedantic(
        run_conversion,
        args=(events, "event", kind, size, NYC_BBOX, EPOCH_2013, method),
        rounds=1,
        iterations=1,
    )


@pytest.mark.parametrize("method", ["naive", "auto"])
@pytest.mark.parametrize("kind,size", [("ts", 96), ("sm", 16), ("raster", 8)])
def test_fig6_traj_conversion(benchmark, bench_trajectories, method, kind, size):
    trajs = bench_trajectories[:N_CONVERT_TRAJS]
    benchmark.pedantic(
        run_conversion,
        args=(trajs, "traj", kind, size, PORTO_BBOX, PORTO_START, method),
        rounds=1,
        iterations=1,
    )


def test_fig6_report(benchmark, bench_events, bench_trajectories):
    """The full Figure 6 sweep with speedups and counted work."""

    def sweep():
        rows = []
        speedups = {}
        cases = [
            ("event", bench_events[:N_CONVERT_EVENTS], NYC_BBOX, EPOCH_2013),
            ("traj", bench_trajectories[:N_CONVERT_TRAJS], PORTO_BBOX, PORTO_START),
        ]
        sizes_by_kind = {"ts": TS_SLOTS, "sm": SM_SIZES, "raster": RASTER_SIZES}
        for singular, data, bbox, t0 in cases:
            for kind, sizes in sizes_by_kind.items():
                for size in sizes:
                    watch = Stopwatch()
                    stats_naive = run_conversion(data, singular, kind, size, bbox, t0, "naive")
                    t_naive = watch.lap()
                    stats_opt = run_conversion(data, singular, kind, size, bbox, t0, "auto")
                    t_opt = watch.lap()
                    speedup = t_naive / t_opt if t_opt else float("inf")
                    speedups[(singular, kind, size)] = speedup
                    rows.append(
                        [
                            f"{singular}2{kind}",
                            size,
                            fmt(t_naive),
                            fmt(t_opt),
                            f"{speedup:.1f}x",
                            stats_naive["candidate_tests"],
                            stats_opt["candidate_tests"],
                        ]
                    )
        print_table(
            "Figure 6: conversion optimization (naive Cartesian vs indexed)",
            ["conversion", "granularity", "t_naive", "t_optimized", "speedup",
             "tests_naive", "tests_optimized"],
            rows,
        )
        return speedups

    speedups = benchmark.pedantic(sweep, rounds=1, iterations=1)
    # Paper shapes: optimization wins, more at finer granularity, and more
    # for point events than for trajectories.
    for kind, sizes in (("ts", TS_SLOTS), ("sm", SM_SIZES), ("raster", RASTER_SIZES)):
        assert speedups[("event", kind, sizes[-1])] > 1.0
        assert speedups[("event", kind, sizes[-1])] >= speedups[("event", kind, sizes[0])] * 0.5
    assert speedups[("event", "raster", RASTER_SIZES[-1])] > speedups[("traj", "raster", RASTER_SIZES[-1])] * 0.5
